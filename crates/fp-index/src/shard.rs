//! Sharded gallery: one logical 1:N index split across S thread-parallel
//! shards, exactly equivalent to the unsharded [`CandidateIndex`].
//!
//! # Id mapping
//!
//! Templates are distributed round-robin by enrollment order: the g-th
//! enrolled template lands on shard `g % S` as that shard's local id
//! `g / S`, so `global_id = local_id * S + shard` recovers exactly the
//! dense enrollment-order id the unsharded index would have assigned.
//!
//! # Why this is *provably* identical, not just approximately
//!
//! Naively running the whole two-stage search per shard and merging the
//! per-shard shortlists is **not** equivalent to the unsharded index: the
//! stage-1 channels are fused by *rank*, and ranks computed inside a shard
//! (against only that shard's entries) differ from global ranks — an entry
//! whose global channel ranks are (5, 100) beats one at (6, 7) globally but
//! can lose to it inside a small shard. Rank fusion is not monotone under
//! entry removal, so per-shard fusion can select a different shortlist and
//! the merged result can miss candidates the unsharded index would return.
//!
//! The sharded search therefore splits along the one seam that *is*
//! shard-invariant: **per-entry channel scores**. An entry's vote score
//! (its own bucket votes over min pair support) and its cylinder-code score
//! are pure functions of (probe, entry) — bit-identical whether the entry
//! shares a gallery with 10 or 10 million others. Each shard computes its
//! entries' scores in parallel (stage 1), the scores are stitched into
//! global arrays via the id mapping, and **one** global rank fusion selects
//! the shortlist — the exact same `fuse_select` the unsharded index runs on
//! the exact same score arrays. The selected ids are handed back to their
//! owning shards for exact stage-2 re-ranking in parallel (per-entry exact
//! scores are trivially shard-invariant too), each shard sorts its part by
//! `(score desc, global id asc)`, and the per-shard lists are merged by the
//! same comparator. Since global ids are unique the comparator is a strict
//! total order, so the S-way merge of sorted parts equals sorting the
//! concatenation — byte-identical to the unsharded [`SearchResult`].

use std::time::{Duration, Instant};

use fp_core::template::Template;
use fp_telemetry::{FingerprintSnapshot, RunFingerprint, Telemetry};

use crate::config::IndexConfig;
use crate::index::{fuse_select, Candidate, CandidateIndex, SearchResult, StageOneScores};
use crate::metrics::IndexMetrics;

/// A gallery sharded across S thread-parallel [`CandidateIndex`] shards.
///
/// Searches return [`SearchResult`]s byte-identical to an unsharded index
/// enrolled in the same order with the same budget; shards buy wall-clock
/// parallelism (stage 1 and stage 2 both fan out across shard threads) and
/// are the in-process rehearsal for the ROADMAP's cross-process sharding.
pub struct ShardedIndex<M: fp_match::PreparableMatcher> {
    shards: Vec<CandidateIndex<M>>,
    /// Roll-up instruments under the canonical `index` prefix, comparable
    /// 1:1 with an unsharded index serving the same gallery.
    rollup: IndexMetrics,
    config: IndexConfig,
    enrolled: usize,
    /// Canonical run fingerprint over merged (global-fusion-order) results
    /// — byte-for-byte comparable with an unsharded index's, because the
    /// merged candidate lists are byte-identical.
    runfp: RunFingerprint,
}

impl<M: fp_match::PreparableMatcher + Clone> ShardedIndex<M> {
    /// Creates an empty index of `shard_count` shards around `matcher`
    /// with the default config.
    pub fn new(matcher: M, shard_count: usize) -> ShardedIndex<M> {
        ShardedIndex::with_config(matcher, IndexConfig::default(), shard_count)
    }

    /// Creates an empty sharded index with an explicit config.
    pub fn with_config(matcher: M, config: IndexConfig, shard_count: usize) -> ShardedIndex<M> {
        assert!(shard_count >= 1, "need at least one shard");
        ShardedIndex {
            shards: (0..shard_count)
                .map(|_| CandidateIndex::with_config(matcher.clone(), config))
                .collect(),
            rollup: IndexMetrics::default(),
            config,
            enrolled: 0,
            runfp: RunFingerprint::new(config.fingerprint_base(0)),
        }
    }
}

impl<M: fp_match::PreparableMatcher> ShardedIndex<M> {
    /// Assembles a sharded index from pre-built shards under the
    /// round-robin id mapping (shard `k` holds global ids `≡ k (mod S)`,
    /// global id `g` at local id `g / S`). This is `fp-store`'s sharded
    /// open path: a persisted gallery's entries are dealt into per-shard
    /// [`CandidateIndex::from_store_parts`] indexes and installed here,
    /// producing an index byte-identical to one grown by
    /// [`enroll`](Self::enroll) calls in global-id order.
    ///
    /// # Panics
    ///
    /// If `shards` is empty, the shards disagree on config, or the shard
    /// lengths violate the round-robin deal (shard `k` of `S` over `n`
    /// total entries must hold exactly `(n + S - 1 - k) / S`).
    pub fn from_shards(shards: Vec<CandidateIndex<M>>) -> ShardedIndex<M> {
        assert!(!shards.is_empty(), "need at least one shard");
        let config = *shards[0].config();
        let s = shards.len();
        let total: usize = shards.iter().map(|shard| shard.len()).sum();
        for (k, shard) in shards.iter().enumerate() {
            assert_eq!(shard.config(), &config, "shard {k} config differs");
            assert_eq!(
                shard.len(),
                (total + s - 1 - k) / s,
                "shard {k} length violates the round-robin deal"
            );
        }
        ShardedIndex {
            shards,
            rollup: IndexMetrics::default(),
            config,
            enrolled: total,
            runfp: RunFingerprint::new(config.fingerprint_base(0)),
        }
    }

    /// Registers the roll-up instruments under the canonical `index` prefix
    /// (so dashboards compare sharded and unsharded runs 1:1) plus one
    /// per-shard bundle under `index.shard<k>` for work attribution.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.rollup = IndexMetrics::new(telemetry);
        self.shards = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(k, shard)| {
                shard.with_metrics(IndexMetrics::with_prefix(
                    telemetry,
                    &format!("index.shard{k}"),
                ))
            })
            .collect();
        self
    }

    /// Re-seeds the canonical run fingerprint (default seed 0). Call
    /// before the first search. Equal seeds, configs, galleries and probe
    /// sequences give a value equal to an unsharded
    /// [`CandidateIndex::run_fingerprint`] — for any shard count.
    pub fn with_run_seed(mut self, seed: u64) -> Self {
        self.runfp = RunFingerprint::new(self.config.fingerprint_base(seed));
        self
    }

    /// Snapshot of the canonical run fingerprint (see
    /// [`CandidateIndex::run_fingerprint`]).
    pub fn run_fingerprint(&self) -> FingerprintSnapshot {
        self.runfp.snapshot()
    }

    /// Per-shard stage-2 part chains, in shard order — what a remote
    /// coordinator would scrape from each shard process.
    pub fn shard_fingerprints(&self) -> Vec<FingerprintSnapshot> {
        self.shards
            .iter()
            .map(|shard| shard.part_fingerprint())
            .collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total enrolled gallery templates across all shards.
    pub fn len(&self) -> usize {
        self.enrolled
    }

    /// Whether the gallery is empty.
    pub fn is_empty(&self) -> bool {
        self.enrolled == 0
    }

    /// The active configuration (shared by every shard).
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Enrolls one template, returning its dense global id (enrollment
    /// order, starting at 0 — identical to the unsharded assignment).
    pub fn enroll(&mut self, template: &Template) -> u32 {
        let s = self.shards.len();
        let global = self.enrolled as u32;
        let shard = self.enrolled % s;
        let local = self.shards[shard].enroll(template);
        debug_assert_eq!(global, local * s as u32 + shard as u32);
        self.rollup.enrolled.incr();
        self.enrolled += 1;
        global
    }

    /// Enrolls a batch: templates are dealt round-robin to the shards and
    /// each shard prepares its share on its own thread (dividing the
    /// machine's cores across shards). The resulting index is identical to
    /// sequential [`enroll`](Self::enroll) calls in slice order. Returns
    /// the global id of the first enrolled template.
    pub fn enroll_all(&mut self, templates: &[Template]) -> u32
    where
        M: Sync,
        M::Prepared: Send,
    {
        let telemetry = self.rollup.telemetry.clone();
        let _span = telemetry.trace_span(
            "index.enroll_all",
            &[
                ("batch", templates.len().to_string()),
                ("shards", self.shards.len().to_string()),
            ],
        );
        let start = Instant::now();
        let s = self.shards.len();
        let first = self.enrolled as u32;
        let mut per_shard: Vec<Vec<&Template>> = vec![Vec::new(); s];
        for (offset, template) in templates.iter().enumerate() {
            per_shard[(self.enrolled + offset) % s].push(template);
        }
        let threads_per_shard = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .div_ceil(s)
            .max(1);
        let ctx = telemetry.trace_ctx();
        std::thread::scope(|scope| {
            for (k, (shard, batch)) in self.shards.iter_mut().zip(&per_shard).enumerate() {
                let (ctx, telemetry) = (&ctx, &telemetry);
                scope.spawn(move || {
                    let _adopt = telemetry.in_ctx(ctx);
                    let _lane = telemetry.trace_span(
                        "index.shard.enroll",
                        &[("shard", k.to_string()), ("batch", batch.len().to_string())],
                    );
                    shard.enroll_all_bounded(batch, threads_per_shard);
                });
            }
        });
        self.rollup.enrolled.add(templates.len() as u64);
        self.rollup.build_batch_time.record(start.elapsed());
        self.enrolled += templates.len();
        first
    }

    /// Searches every shard with the configured shortlist budget.
    pub fn search(&self, probe: &Template) -> SearchResult
    where
        M: Sync,
    {
        self.search_with_budget(probe, self.config.shortlist)
    }

    /// Searches with an explicit **total** shortlist budget (the budget is
    /// global, applied at the single global fusion — not per shard).
    /// Returns a result byte-identical to
    /// [`CandidateIndex::search_with_budget`] on the same gallery.
    pub fn search_with_budget(&self, probe: &Template, shortlist: usize) -> SearchResult
    where
        M: Sync,
    {
        let start = Instant::now();
        let n = self.enrolled;
        let s = self.shards.len();
        let telemetry = &self.rollup.telemetry;
        let _span = telemetry.trace_span(
            "index.search",
            &[("gallery", n.to_string()), ("shards", s.to_string())],
        );
        self.rollup.searches.incr();

        // Probe-side features are pure functions of (probe, config); every
        // shard shares one read-only copy computed on shard 0's extractors.
        let probe_features = self.shards[0].probe_features(probe);
        let probe_prepared = self.shards[0].prepare_probe(probe);

        // Stage 1, one thread per shard: shard-local per-entry channel
        // scores (shard-invariant — see the module docs).
        let (stage1, stage1_times): (Vec<StageOneScores>, Vec<Duration>) = self
            .per_shard("index.shard.search", |shard| {
                let t0 = Instant::now();
                let scores = shard.stage1(&probe_features);
                (scores, t0.elapsed())
            })
            .into_iter()
            .unzip();

        // Stitch the shard score arrays into global arrays and run ONE
        // global fusion — the same `fuse_select` over the same scores the
        // unsharded index would see.
        let mut bucket_hits = 0u64;
        let mut hamming_word_ops = 0u64;
        for scores in &stage1 {
            bucket_hits += scores.bucket_hits;
            hamming_word_ops += scores.hamming_word_ops;
        }
        self.rollup.bucket_hits.add(bucket_hits);
        self.rollup.bucket_hits_per_search.record(bucket_hits);
        self.rollup.hamming_ops.add(hamming_word_ops);
        self.rollup.hamming_per_search.record(hamming_word_ops);

        let (vote_scores, cyl_scores) = stitch_stage_one(&stage1, n);
        let selected_local = select_per_shard(&vote_scores, &cyl_scores, shortlist, s);

        // Stage 2, one thread per shard: exact scores for the selected
        // entries, mapped back to global ids and sorted by the final
        // comparator within each shard.
        let parts: Vec<(Vec<Candidate>, Duration)> = {
            let selected_local = &selected_local;
            self.per_shard_indexed("index.shard.rerank", |k, shard| {
                let t0 = Instant::now();
                let mut part = shard.rerank(&selected_local[k], &probe_prepared);
                // Fold the part chain before globalizing — local ids in
                // selection order, the same sequence a remote shard folds
                // when serving the equivalent stage-2 request. Empty
                // selections fold nothing: remote drivers skip the round
                // trip entirely, and the chains must match.
                if !selected_local[k].is_empty() {
                    shard.fold_part(&part);
                }
                globalize_and_sort(&mut part, k, s);
                (part, t0.elapsed())
            })
        };

        // Per-shard metering: each shard served one (partial) search.
        for (k, shard) in self.shards.iter().enumerate() {
            let metrics = shard.metrics();
            let scores = &stage1[k];
            let (part, rerank_time) = &parts[k];
            metrics.searches.incr();
            metrics.bucket_hits.add(scores.bucket_hits);
            metrics.bucket_hits_per_search.record(scores.bucket_hits);
            metrics.hamming_ops.add(scores.hamming_word_ops);
            metrics.hamming_per_search.record(scores.hamming_word_ops);
            metrics.rerank_comparisons.add(part.len() as u64);
            metrics
                .candidates_pruned
                .add((shard.len() - part.len()) as u64);
            metrics.shortlist.record(part.len() as u64);
            metrics.search_time.record(stage1_times[k] + *rerank_time);
        }

        let sorted_parts: Vec<Vec<Candidate>> = parts.into_iter().map(|(p, _)| p).collect();
        let candidates = merge_sorted_parts(&sorted_parts);

        self.rollup.rerank_comparisons.add(candidates.len() as u64);
        self.rollup
            .candidates_pruned
            .add((n - candidates.len()) as u64);
        self.rollup.shortlist.record(candidates.len() as u64);
        self.rollup.search_time.record(start.elapsed());
        let result = SearchResult::from_parts(candidates, n);
        self.runfp.record_item(&result);
        result
    }

    /// Runs `f` once per shard, one thread per shard (inline when there is
    /// only one shard), collecting results in shard order. Worker threads
    /// adopt the calling span so `name` spans nest under it.
    fn per_shard<T: Send>(&self, name: &str, f: impl Fn(&CandidateIndex<M>) -> T + Sync) -> Vec<T>
    where
        M: Sync,
    {
        self.per_shard_indexed(name, |_, shard| f(shard))
    }

    fn per_shard_indexed<T: Send>(
        &self,
        name: &str,
        f: impl Fn(usize, &CandidateIndex<M>) -> T + Sync,
    ) -> Vec<T>
    where
        M: Sync,
    {
        let telemetry = &self.rollup.telemetry;
        if self.shards.len() == 1 {
            let _lane = telemetry.trace_span(name, &[("shard", "0".to_string())]);
            return vec![f(0, &self.shards[0])];
        }
        let ctx = telemetry.trace_ctx();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(k, shard)| {
                    let (ctx, f) = (&ctx, &f);
                    scope.spawn(move || {
                        let _adopt = telemetry.in_ctx(ctx);
                        let _lane = telemetry.trace_span(name, &[("shard", k.to_string())]);
                        f(k, shard)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }
}

// ---------------------------------------------------------------------------
// The shared seam: pure functions between stage 1 and stage 2.
//
// These four helpers are the *entire* shard-count-dependent logic of a
// sharded search. [`ShardedIndex`] runs them over in-process shards and
// `fp-serve`'s coordinator runs the very same functions over remote shard
// connections, which is how cross-process results stay byte-identical to
// in-process ones: the only code that differs between the two is transport.
// ---------------------------------------------------------------------------

/// Stitches per-shard stage-1 score arrays into global score arrays via the
/// round-robin id mapping `global = local * shards + shard`. `total` is the
/// full gallery size (must equal the sum of the per-shard lengths).
pub fn stitch_stage_one(per_shard: &[StageOneScores], total: usize) -> (Vec<f64>, Vec<f64>) {
    let s = per_shard.len();
    debug_assert_eq!(
        total,
        per_shard.iter().map(|p| p.vote_scores.len()).sum::<usize>()
    );
    let mut vote_scores = vec![0.0f64; total];
    let mut cyl_scores = vec![0.0f64; total];
    for (k, scores) in per_shard.iter().enumerate() {
        for (local, (&v, &c)) in scores
            .vote_scores
            .iter()
            .zip(&scores.cyl_scores)
            .enumerate()
        {
            let global = local * s + k;
            vote_scores[global] = v;
            cyl_scores[global] = c;
        }
    }
    (vote_scores, cyl_scores)
}

/// Runs the ONE global best-rank fusion over stitched global score arrays
/// and deals the selected global ids back to their owning shards as local
/// ids (selection order within each shard is preserved; stage 2 does not
/// depend on it — parts are sorted afterwards).
pub fn select_per_shard(
    vote_scores: &[f64],
    cyl_scores: &[f64],
    shortlist: usize,
    shards: usize,
) -> Vec<Vec<u32>> {
    let selected = fuse_select(vote_scores, cyl_scores, shortlist);
    let mut selected_local: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for global in selected {
        selected_local[global as usize % shards].push(global / shards as u32);
    }
    selected_local
}

/// Maps one shard's stage-2 part from local to global ids and sorts it by
/// the final `(score desc, id asc)` comparator, making it a mergeable run.
pub fn globalize_and_sort(part: &mut [Candidate], shard: usize, shards: usize) {
    for candidate in part.iter_mut() {
        candidate.id = candidate.id * shards as u32 + shard as u32;
    }
    part.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
}

/// S-way merge of sorted per-shard parts by (score desc, global id asc).
/// Ids are unique, so the comparator is a strict total order and the merge
/// equals sorting the concatenation — i.e. the unsharded final sort.
pub fn merge_sorted_parts(parts: &[Vec<Candidate>]) -> Vec<Candidate> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut candidates = Vec::with_capacity(total);
    let mut heads = vec![0usize; parts.len()];
    for _ in 0..total {
        let mut best: Option<(usize, &Candidate)> = None;
        for (k, part) in parts.iter().enumerate() {
            if let Some(c) = part.get(heads[k]) {
                let better = match best {
                    None => true,
                    Some((_, b)) => (c.score, std::cmp::Reverse(c.id))
                        .cmp(&(b.score, std::cmp::Reverse(b.id)))
                        .is_gt(),
                };
                if better {
                    best = Some((k, c));
                }
            }
        }
        let (k, c) = best.expect("total counts every remaining candidate");
        candidates.push(*c);
        heads[k] += 1;
    }
    candidates
}
