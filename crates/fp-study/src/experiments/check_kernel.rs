//! **Gate: stage-1 kernel parity** — the cache-blocked SoA arena kernel
//! must be byte-identical to the scalar reference, end to end, on a real
//! enrolled gallery.
//!
//! The proptest suite (`fp-index/tests/kernel.rs`) proves scalar ≡ blocked
//! over random packed codes; this gate re-proves it on every CI run at
//! system scale, over the same synthetic cohort the scaling study uses:
//!
//! 1. **Score parity** — for every probe, the enrolled index's blocked
//!    per-entry stage-1 scores must be *bitwise* equal to the scalar
//!    reference driver's, and the `hamming_ops` meters must agree exactly.
//! 2. **Transport parity** — the RUNFP chain over the full probe loop must
//!    be identical across the unsharded index, an in-process
//!    [`ShardedIndex`], and (when `--remote-shards` is given) real
//!    `serve-shard` child processes behind an `fp-serve` coordinator —
//!    the blocked kernel cannot perturb a single candidate byte on any
//!    transport.
//!
//! Any divergence fails the gate loudly with the first offending probe and
//! entry.

use std::time::Duration;

use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardedIndex};
use fp_match::PairTableMatcher;
use fp_serve::proc::spawn_shard;
use fp_serve::{Coordinator, RetryPolicy};
use serde_json::json;

use crate::config::StudyConfig;
use crate::experiments::ext_scaling::{recapture, synthetic_template, CROSS_DEVICE, SAME_DEVICE};
use crate::report::Report;

/// Probes checked (each one scores the whole gallery twice, once per
/// kernel, plus one search per transport).
const MAX_PROBES: usize = 32;

/// What the parity pass measured.
struct KernelStats {
    gallery: usize,
    probes: usize,
    entries_checked: u64,
    hamming_ops: u64,
    arena_kib: usize,
    runfp: String,
    runfp_sharded: String,
    shards: usize,
    runfp_remote: Option<String>,
    remote_shards: usize,
}

/// Runs the gate: `Ok` with the stats, or the first divergence found.
fn check(config: &StudyConfig) -> Result<KernelStats, String> {
    let seeds = SeedTree::new(config.seed).child(&[0xEC]);
    let gallery = config.subjects * 10;
    let pool: Vec<Template> = (0..gallery)
        .map(|i| synthetic_template(&seeds, i as u64, 22 + i % 14))
        .collect();
    let index_config = IndexConfig::scaled(gallery);

    let mut index = CandidateIndex::with_config(PairTableMatcher::default(), index_config)
        .with_run_seed(config.seed);
    index.enroll_all(&pool);

    let probes = gallery.min(MAX_PROBES);
    let stride = gallery / probes;
    let probe_of = |p: usize| -> Template {
        let subject = p * stride;
        let profile = if p.is_multiple_of(2) {
            SAME_DEVICE
        } else {
            CROSS_DEVICE
        };
        recapture(&pool[subject], &seeds, (gallery + subject) as u64, profile)
    };

    // 1. Score parity: blocked kernel vs scalar reference, bitwise, plus
    // exact hamming_ops agreement, for every probe over the whole gallery.
    let mut entries_checked = 0u64;
    let mut hamming_ops = 0u64;
    for p in 0..probes {
        let probe = probe_of(p);
        let (blocked, ops_blocked) = index.stage1_cylinder_scores(&probe);
        let (reference, ops_reference) = index.stage1_cylinder_scores_reference(&probe);
        if ops_blocked != ops_reference {
            return Err(format!(
                "probe {p}: hamming_ops diverged (blocked {ops_blocked}, \
                 reference {ops_reference})"
            ));
        }
        for (id, (b, r)) in blocked.iter().zip(&reference).enumerate() {
            if b.to_bits() != r.to_bits() {
                return Err(format!(
                    "probe {p}, gallery entry {id}: blocked kernel scored {b} \
                     ({:#018x}), scalar reference scored {r} ({:#018x})",
                    b.to_bits(),
                    r.to_bits()
                ));
            }
        }
        entries_checked += blocked.len() as u64;
        hamming_ops += ops_blocked;
    }

    // 2. Transport parity: the same probe loop on every transport must
    // produce identical candidate lists, hence identical RUNFP chains.
    let unsharded_results: Vec<_> = (0..probes).map(|p| index.search(&probe_of(p))).collect();
    let runfp = index.run_fingerprint().hex();

    let shards = config.shards.max(2);
    let mut sharded = ShardedIndex::with_config(PairTableMatcher::default(), index_config, shards)
        .with_run_seed(config.seed);
    sharded.enroll_all(&pool);
    for (p, unsharded_result) in unsharded_results.iter().enumerate() {
        let result = sharded.search(&probe_of(p));
        if result.candidates() != unsharded_result.candidates() {
            return Err(format!(
                "probe {p}: {shards}-shard candidate list diverged from unsharded"
            ));
        }
    }
    let runfp_sharded = sharded.run_fingerprint().hex();
    if runfp_sharded != runfp {
        return Err(format!(
            "RUNFP diverged: unsharded {runfp}, {shards}-shard {runfp_sharded}"
        ));
    }

    let mut runfp_remote = None;
    if config.remote_shards >= 1 {
        let hex = remote_runfp(config, &pool, index_config, &unsharded_results, &probe_of)?;
        if hex != runfp {
            return Err(format!(
                "RUNFP diverged: unsharded {runfp}, remote {hex} \
                 ({} serve-shard children)",
                config.remote_shards
            ));
        }
        runfp_remote = Some(hex);
    }

    Ok(KernelStats {
        gallery,
        probes,
        entries_checked,
        hamming_ops,
        arena_kib: index.arena().packed_bytes() / 1024,
        runfp,
        runfp_sharded,
        shards,
        runfp_remote,
        remote_shards: config.remote_shards,
    })
}

/// The cross-process rung: the same probe loop through real `serve-shard`
/// children, returning the coordinator's RUNFP hex (after auditing full
/// candidate-list parity per probe).
fn remote_runfp(
    config: &StudyConfig,
    pool: &[Template],
    index_config: IndexConfig,
    unsharded_results: &[fp_index::SearchResult],
    probe_of: &dyn Fn(usize) -> Template,
) -> Result<String, String> {
    let exe = match std::env::var_os("FP_SERVE_SHARD_EXE") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
    };
    let mut children = Vec::with_capacity(config.remote_shards);
    for _ in 0..config.remote_shards {
        children.push(
            spawn_shard(&exe, &["serve-shard"])
                .map_err(|e| format!("spawn {exe:?} serve-shard: {e}"))?,
        );
    }
    let addrs: Vec<std::net::SocketAddr> = children.iter().map(|c| c.addr).collect();
    let mut remote = Coordinator::connect(
        &addrs,
        index_config,
        Duration::from_secs(60),
        RetryPolicy::default(),
    )
    .map_err(|e| e.to_string())?
    .with_run_seed(config.seed);
    remote.enroll_all(pool).map_err(|e| e.to_string())?;

    for (p, unsharded_result) in unsharded_results.iter().enumerate() {
        let result = remote.search(&probe_of(p)).map_err(|e| e.to_string())?;
        if result.candidates() != unsharded_result.candidates() {
            return Err(format!(
                "probe {p}: remote candidate list diverged from unsharded"
            ));
        }
    }
    let hex = remote.run_fingerprint().hex();
    remote
        .verify_fingerprints()
        .map_err(|e| format!("fingerprint verification: {e}"))?;

    let _ = remote.shutdown_all();
    for child in &mut children {
        child.wait_exit(Duration::from_secs(5));
    }
    Ok(hex)
}

/// Runs the gate and renders the report. `values["error"]` is `null` on
/// success; the CLI exit code keys off it.
pub fn run_check(config: &StudyConfig) -> Report {
    match check(config) {
        Ok(stats) => {
            let mut body = format!(
                "stage-1 kernel parity over a {}-entry gallery ({} KiB packed arena):\n\
                 \n\
                 blocked ≡ scalar: {} per-entry scores bitwise equal over {} probes\n\
                 hamming_ops meters agree exactly: {} word ops\n\
                 RUNFP unsharded:      {}\n\
                 RUNFP {}-shard:        {}\n",
                stats.gallery,
                stats.arena_kib,
                stats.entries_checked,
                stats.probes,
                stats.hamming_ops,
                stats.runfp,
                stats.shards,
                stats.runfp_sharded,
            );
            if let Some(remote) = &stats.runfp_remote {
                body.push_str(&format!(
                    "RUNFP remote ({} proc): {}\n",
                    stats.remote_shards, remote
                ));
            }
            body.push_str("\nkernel parity holds on every transport\n");
            Report::new(
                "check-kernel",
                "blocked stage-1 kernel ≡ scalar reference (bitwise)",
                body,
                json!({
                    "error": null,
                    "gallery": stats.gallery,
                    "probes": stats.probes,
                    "entries_checked": stats.entries_checked,
                    "hamming_ops": stats.hamming_ops,
                    "arena_kib": stats.arena_kib,
                    "runfp": stats.runfp,
                    "runfp_sharded": stats.runfp_sharded,
                    "runfp_remote": stats.runfp_remote,
                }),
            )
        }
        Err(error) => Report::new(
            "check-kernel",
            "blocked stage-1 kernel ≡ scalar reference (bitwise)",
            format!("KERNEL PARITY FAILED: {error}\n"),
            json!({ "error": error }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;

    #[test]
    fn gate_passes_on_the_default_cohort() {
        let config = StudyConfig::builder().subjects(6).build();
        let report = run_check(&config);
        assert!(
            report.values["error"].is_null(),
            "kernel parity gate failed: {}",
            report.body
        );
        assert!(report.values["entries_checked"].as_u64().unwrap() > 0);
        assert!(report.values["hamming_ops"].as_u64().unwrap() > 0);
        assert_eq!(report.values["runfp"], report.values["runfp_sharded"]);
    }
}
