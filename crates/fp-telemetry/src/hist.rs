//! Lock-free log-linear histograms.
//!
//! Values land in one of 256 buckets: exact buckets for 0–15, then four
//! logarithmic sub-buckets per power of two (≤ ~19% relative width, so
//! reported percentiles are within ~10% of the true value). Recording is a
//! single relaxed `fetch_add` plus `fetch_min`/`fetch_max` maintenance —
//! safe to hammer from every worker thread at once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

/// Exact buckets below this value.
const LINEAR: u64 = 16;
/// Log sub-buckets per power of two.
const SUBS: usize = 4;
/// Total bucket count: 16 linear + 4 × (octaves 4..=63).
pub(crate) const BUCKETS: usize = LINEAR as usize + SUBS * 60;

#[derive(Debug)]
pub(crate) struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index of `v`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // 4..=63
    let sub = ((v >> (exp - 2)) & 0x3) as usize; // top two mantissa bits
    LINEAR as usize + (exp - 4) * SUBS + sub
}

/// Lower bound of bucket `index` (inverse of [`bucket_index`]).
fn bucket_floor(index: usize) -> u64 {
    if index < LINEAR as usize {
        return index as u64;
    }
    let exp = (index - LINEAR as usize) / SUBS + 4;
    let sub = ((index - LINEAR as usize) % SUBS) as u64;
    (1u64 << exp) | (sub << (exp - 2))
}

/// Representative value of bucket `index`: the midpoint of its range.
fn bucket_mid(index: usize) -> u64 {
    let lo = bucket_floor(index);
    let hi = if index + 1 < BUCKETS {
        bucket_floor(index + 1)
    } else {
        lo
    };
    lo + (hi - lo) / 2
}

impl HistogramCore {
    pub(crate) fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile among `count` recorded values.
            let rank = ((q * (count - 1) as f64).round() as u64).min(count - 1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen > rank {
                    // A bucket midpoint can overshoot the true maximum;
                    // the exact max is always a tighter bound.
                    return bucket_mid(i).min(max);
                }
            }
            max
        };
        // Tail percentiles need population: with fewer than 4 samples the
        // rank rounding collapses p99/p999 onto low ranks and the tail
        // under-reports (a single slow call would vanish from p99). The
        // exact max is the honest tail estimate until there is enough data.
        let tail = |q: f64| -> u64 {
            if count > 0 && count < 4 {
                max
            } else {
                percentile(q)
            }
        };
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max,
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: tail(0.99),
            p999: tail(0.999),
        }
    }
}

/// Aggregated view of one histogram. For duration histograms every figure
/// is in nanoseconds; for value histograms they are plain magnitudes.
/// `p50`/`p95`/`p99`/`p999` are bucket midpoints clamped to the exact
/// maximum (≤ ~10% relative error); `min`, `max` and `sum` are exact.
///
/// Near-empty semantics: with fewer than 4 recorded values the tail
/// percentiles `p99`/`p999` report the exact `max` instead of a rank
/// estimate — rank rounding over 1–3 samples lands on low ranks, which
/// would hide the only slow observation the histogram holds. An empty
/// histogram is all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Approximate 99.9th percentile (the tail the load harness lives on).
    pub p999: u64,
}

impl serde::Deserialize for HistogramSnapshot {
    fn from_content(content: &serde::Content) -> Result<HistogramSnapshot, serde::DeError> {
        // `p99`/`p999` default to 0 when parsing snapshots written before
        // the fields existed (the vendored derive has no `#[serde(default)]`).
        let tail = |name: &str| -> Result<u64, serde::DeError> {
            match content.field(name) {
                Ok(v) => serde::Deserialize::from_content(v),
                Err(_) => Ok(0),
            }
        };
        Ok(HistogramSnapshot {
            count: serde::Deserialize::from_content(content.field("count")?)?,
            sum: serde::Deserialize::from_content(content.field("sum")?)?,
            min: serde::Deserialize::from_content(content.field("min")?)?,
            max: serde::Deserialize::from_content(content.field("max")?)?,
            p50: serde::Deserialize::from_content(content.field("p50")?)?,
            p95: serde::Deserialize::from_content(content.field("p95")?)?,
            p99: tail("p99")?,
            p999: tail("p999")?,
        })
    }
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Records wall-clock durations (as nanoseconds) into a shared histogram.
#[derive(Debug, Clone, Default)]
pub struct DurationHistogram {
    core: Option<Arc<HistogramCore>>,
}

impl DurationHistogram {
    pub(crate) fn new(core: Option<Arc<HistogramCore>>) -> DurationHistogram {
        DurationHistogram { core }
    }

    pub(crate) fn core(&self) -> Option<&Arc<HistogramCore>> {
        self.core.as_ref()
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        if let Some(core) = &self.core {
            core.record(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// The current aggregate (zeros when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map(|c| c.snapshot())
            .unwrap_or(EMPTY_SNAPSHOT)
    }
}

/// Records work sizes (counts of pairs, clusters, votes, ...) into a shared
/// histogram.
#[derive(Debug, Clone, Default)]
pub struct ValueHistogram {
    core: Option<Arc<HistogramCore>>,
}

impl ValueHistogram {
    pub(crate) fn new(core: Option<Arc<HistogramCore>>) -> ValueHistogram {
        ValueHistogram { core }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.record(v);
        }
    }

    /// The current aggregate (zeros when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map(|c| c.snapshot())
            .unwrap_or(EMPTY_SNAPSHOT)
    }
}

const EMPTY_SNAPSHOT: HistogramSnapshot = HistogramSnapshot {
    count: 0,
    sum: 0,
    min: 0,
    max: 0,
    p50: 0,
    p95: 0,
    p99: 0,
    p999: 0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_floor_are_inverse() {
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_floor(idx) <= v, "floor({idx}) > {v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_floor(idx + 1) > v, "next floor({}) <= {v}", idx + 1);
            }
        }
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(idx)), idx);
        }
    }

    #[test]
    fn exact_stats_are_exact() {
        let core = HistogramCore::default();
        for v in [3u64, 9, 200, 50, 7] {
            core.record(v);
        }
        let s = core.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 269);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 200);
    }

    #[test]
    fn percentiles_are_close_for_uniform_values() {
        let core = HistogramCore::default();
        for v in 1..=1000u64 {
            core.record(v);
        }
        let s = core.snapshot();
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
        assert!(rel(s.p50, 500) < 0.15, "p50 = {}", s.p50);
        assert!(rel(s.p95, 950) < 0.15, "p95 = {}", s.p95);
        assert!(rel(s.p99, 990) < 0.15, "p99 = {}", s.p99);
        assert!(rel(s.p999, 999) < 0.15, "p999 = {}", s.p999);
        // The tail is ordered by construction.
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999);
    }

    #[test]
    fn small_exact_values_give_exact_percentiles() {
        let core = HistogramCore::default();
        for v in [2u64, 2, 2, 2, 2, 2, 2, 2, 2, 12] {
            core.record(v);
        }
        let s = core.snapshot();
        assert_eq!(s.p50, 2);
    }

    #[test]
    fn near_empty_tail_percentiles_report_the_max() {
        // One slow call must not vanish from the tail.
        let core = HistogramCore::default();
        core.record(1_000_000);
        let s = core.snapshot();
        assert_eq!(s.p99, 1_000_000);
        assert_eq!(s.p999, 1_000_000);
        core.record(3);
        core.record(5);
        let s = core.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.p99, 1_000_000);
        assert_eq!(s.p999, 1_000_000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999);
    }

    #[test]
    fn percentiles_never_exceed_the_exact_max() {
        let core = HistogramCore::default();
        for _ in 0..100 {
            core.record(1000); // bucket midpoint overshoots 1000
        }
        let s = core.snapshot();
        assert!(s.p50 <= s.max, "p50 = {} > max = {}", s.p50, s.max);
        assert!(s.p999 <= s.max, "p999 = {} > max = {}", s.p999, s.max);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = HistogramCore::default().snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0,
                p999: 0,
            }
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let core = std::sync::Arc::new(HistogramCore::default());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let core = std::sync::Arc::clone(&core);
                scope.spawn(move || {
                    for i in 0..25_000u64 {
                        core.record(t * 25_000 + i);
                    }
                });
            }
        });
        assert_eq!(core.snapshot().count, 100_000);
    }
}
