//! **Table 5** — the interoperability FNMR matrix at fixed FMR = 0.01%.
//!
//! Rows are the enrollment (gallery) device, columns the verification
//! (probe) device. The paper's shape, which this run must reproduce:
//!
//! * diagonal (intra-device) FNMR is generally the row minimum…
//! * …except {D1,D1} (noisy optics: two noisy captures match worse than a
//!   noisy capture against a clean one) and {D3,D3} (small window: two D3
//!   captures crop different parts of the finger);
//! * the D4 row/column (ink cards) is the worst off-diagonal region, while
//!   {D4,D4} is the *best* diagonal (operator-guided, large-area rolled
//!   impressions are mutually consistent).

use fp_core::ids::DeviceId;
use serde_json::json;

use crate::report::{render_device_matrix, Report};
use crate::scores::StudyData;

/// Computes the FNMR matrix at the configured FMR.
pub fn fnmr_matrix(data: &StudyData, fmr: f64) -> Vec<Vec<f64>> {
    (0..5u8)
        .map(|g| {
            (0..5u8)
                .map(|p| {
                    data.scores
                        .score_set(DeviceId(g), DeviceId(p))
                        .fnmr_at_fmr(fmr)
                })
                .collect()
        })
        .collect()
}

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let fmr = data.dataset.config().table5_fmr;
    let matrix = fnmr_matrix(data, fmr);

    let mut body = render_device_matrix(
        &format!(
            "FNMR at fixed FMR = {:.4}% (rows: enroll, cols: verify):",
            fmr * 100.0
        ),
        |g, p| format!("{:.2e}", matrix[g][p]),
    );

    // Shape diagnostics.
    let diag_is_min: Vec<bool> = (0..5)
        .map(|g| (0..5).all(|p| matrix[g][g] <= matrix[g][p] + 1e-12))
        .collect();
    let best_diag = (0..5)
        .min_by(|&a, &b| matrix[a][a].partial_cmp(&matrix[b][b]).expect("finite"))
        .expect("non-empty");
    let mean_offdiag_by_probe: Vec<f64> = (0..5)
        .map(|p| {
            let xs: Vec<f64> = (0..5).filter(|&g| g != p).map(|g| matrix[g][p]).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .collect();
    let worst_probe = (0..5)
        .max_by(|&a, &b| {
            mean_offdiag_by_probe[a]
                .partial_cmp(&mean_offdiag_by_probe[b])
                .expect("finite")
        })
        .expect("non-empty");

    body.push_str(&format!(
        "\nshape: diagonal is row minimum for {:?}\n\
         best diagonal: D{best_diag} (paper: D4)\n\
         worst probe column (mean off-diagonal FNMR): D{worst_probe} (paper: D4)\n",
        (0..5)
            .filter(|&g| diag_is_min[g])
            .map(|g| format!("D{g}"))
            .collect::<Vec<_>>(),
    ));

    Report::new(
        "table5",
        "Interoperability FNMR matrix (paper Table 5)",
        body,
        json!({
            "fmr": fmr,
            "fnmr": matrix,
            "diag_is_row_min": diag_is_min,
            "best_diagonal": best_diag,
            "worst_probe_column": worst_probe,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn matrix_is_5x5_of_rates() {
        let r = run(testdata::small());
        let m = r.values["fnmr"].as_array().unwrap();
        assert_eq!(m.len(), 5);
        for row in m {
            for cell in row.as_array().unwrap() {
                let v = cell.as_f64().unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn fnmr_grows_with_stricter_fmr() {
        let data = testdata::small();
        let strict = fnmr_matrix(data, 1e-4);
        let loose = fnmr_matrix(data, 1e-2);
        for g in 0..5 {
            for p in 0..5 {
                assert!(
                    strict[g][p] >= loose[g][p] - 1e-12,
                    "cell ({g},{p}): strict {} < loose {}",
                    strict[g][p],
                    loose[g][p]
                );
            }
        }
    }
}
