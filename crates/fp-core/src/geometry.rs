//! Planar geometry in physical units (millimetres) plus circular arithmetic.
//!
//! Two distinct angular types prevent the classic fingerprint-code bug of
//! mixing directed quantities (minutia directions, `mod 2*pi`) with undirected
//! ones (ridge-flow orientations, `mod pi`):
//!
//! * [`Direction`] — a point on the full circle, stored in `(-pi, pi]`.
//! * [`Orientation`] — a point on the half circle, stored in `[0, pi)`.

use std::f64::consts::PI;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const TAU: f64 = 2.0 * PI;

/// A point in the finger-centred plane, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (mm), `+x` toward the right edge of the finger.
    pub x: f64,
    /// Vertical coordinate (mm), `+y` toward the fingertip.
    pub y: f64,
}

impl Point {
    /// The origin (centre of the finger pad).
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from millimetre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in millimetres.
    pub fn distance(&self, other: &Point) -> f64 {
        (*self - *other).norm()
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let d = *self - *other;
        d.x * d.x + d.y * d.y
    }

    /// Direction of the ray from `self` to `other`.
    ///
    /// Returns [`Direction::ZERO`] when the points coincide.
    pub fn direction_to(&self, other: &Point) -> Direction {
        let d = *other - *self;
        if d.x == 0.0 && d.y == 0.0 {
            Direction::ZERO
        } else {
            Direction::from_radians(d.y.atan2(d.x))
        }
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Rotates the point about the origin by `angle`.
    pub fn rotated(&self, angle: Direction) -> Point {
        let (s, c) = angle.radians().sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }
}

/// A displacement between two [`Point`]s, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    /// Horizontal component (mm).
    pub x: f64,
    /// Vertical component (mm).
    pub y: f64,
}

impl Vector {
    /// The zero displacement.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from millimetre components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// A unit vector pointing along `direction`.
    pub fn unit(direction: Direction) -> Self {
        let (s, c) = direction.radians().sin_cos();
        Vector::new(c, s)
    }

    /// Euclidean length in millimetres.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(&self, other: &Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(&self, other: &Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The direction this vector points in; [`Direction::ZERO`] for the zero
    /// vector.
    pub fn direction(&self) -> Direction {
        if self.x == 0.0 && self.y == 0.0 {
            Direction::ZERO
        } else {
            Direction::from_radians(self.y.atan2(self.x))
        }
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vector {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

/// Wraps an angle in radians into `(-pi, pi]`.
fn wrap_direction(radians: f64) -> f64 {
    // rem_euclid maps to [0, tau); shift to (-pi, pi].
    let r = radians.rem_euclid(TAU);
    if r > PI {
        r - TAU
    } else {
        r
    }
}

/// Wraps an angle in radians into `[0, pi)`.
fn wrap_orientation(radians: f64) -> f64 {
    let r = radians.rem_euclid(PI);
    // rem_euclid can return PI itself due to rounding when radians is a tiny
    // negative number; fold it back.
    if r >= PI {
        0.0
    } else {
        r
    }
}

/// A directed angle on the full circle, canonicalized to `(-pi, pi]` radians.
///
/// Use for minutia directions and any quantity where "this way" differs from
/// "the opposite way". Arithmetic wraps around the circle.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Direction(f64);

impl Direction {
    /// The zero direction (pointing along `+x`).
    pub const ZERO: Direction = Direction(0.0);

    /// Creates a direction from radians; any finite value is wrapped.
    pub fn from_radians(radians: f64) -> Self {
        Direction(wrap_direction(radians))
    }

    /// Creates a direction from degrees; any finite value is wrapped.
    pub fn from_degrees(degrees: f64) -> Self {
        Direction::from_radians(degrees.to_radians())
    }

    /// Reconstructs a direction from an already-canonical radian value —
    /// one previously obtained from [`radians`](Self::radians) — preserving
    /// it **bit-for-bit**. [`from_radians`](Self::from_radians) re-wraps,
    /// and wrapping is not bit-idempotent (`x.rem_euclid(TAU)` followed by
    /// the `±TAU` shift rounds for negative `x`), so deserializers that
    /// must reproduce stored directions exactly use this instead. Returns
    /// `None` when `radians` is outside the canonical `(-pi, pi]` range,
    /// so hostile inputs surface as a typed error at the caller instead of
    /// a direction that silently violates the wrapping invariant.
    pub fn try_from_canonical_radians(radians: f64) -> Option<Self> {
        if radians > -PI && radians <= PI {
            Some(Direction(radians))
        } else {
            None
        }
    }

    /// The canonical radian value in `(-pi, pi]`.
    pub fn radians(&self) -> f64 {
        self.0
    }

    /// The canonical value converted to degrees, in `(-180, 180]`.
    pub fn degrees(&self) -> f64 {
        self.0.to_degrees()
    }

    /// The direction pointing the opposite way.
    pub fn opposite(&self) -> Direction {
        Direction::from_radians(self.0 + PI)
    }

    /// Signed smallest rotation taking `other` to `self`, in `(-pi, pi]`.
    pub fn signed_delta(&self, other: Direction) -> f64 {
        wrap_direction(self.0 - other.0)
    }

    /// Absolute angular separation in `[0, pi]`.
    pub fn separation(&self, other: Direction) -> f64 {
        self.signed_delta(other).abs()
    }

    /// Collapses the direction onto the half-circle of undirected
    /// orientations.
    pub fn to_orientation(&self) -> Orientation {
        Orientation::from_radians(self.0)
    }

    /// Rotates by `radians` (wrapping).
    pub fn rotated(&self, radians: f64) -> Direction {
        Direction::from_radians(self.0 + radians)
    }
}

impl Add<f64> for Direction {
    type Output = Direction;
    fn add(self, rhs: f64) -> Direction {
        self.rotated(rhs)
    }
}

impl Sub<f64> for Direction {
    type Output = Direction;
    fn sub(self, rhs: f64) -> Direction {
        self.rotated(-rhs)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.degrees())
    }
}

/// An undirected ridge-flow orientation, canonicalized to `[0, pi)` radians.
///
/// Ridge flow has no arrow: flowing "northeast" and "southwest" are the same
/// orientation. Angular differences therefore live in `[0, pi/2]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Orientation(f64);

impl Orientation {
    /// Horizontal ridge flow.
    pub const HORIZONTAL: Orientation = Orientation(0.0);

    /// Creates an orientation from radians; any finite value is wrapped into
    /// `[0, pi)`.
    pub fn from_radians(radians: f64) -> Self {
        Orientation(wrap_orientation(radians))
    }

    /// The canonical radian value in `[0, pi)`.
    pub fn radians(&self) -> f64 {
        self.0
    }

    /// Smallest angular separation between two orientations, in
    /// `[0, pi/2]`.
    pub fn separation(&self, other: Orientation) -> f64 {
        let d = (self.0 - other.0).abs();
        d.min(PI - d)
    }

    /// Lifts to a [`Direction`] pointing along the orientation (the
    /// representative in `[0, pi)`).
    pub fn to_direction(&self) -> Direction {
        Direction::from_radians(self.0)
    }

    /// Rotates by `radians` (wrapping on the half-circle).
    pub fn rotated(&self, radians: f64) -> Orientation {
        Orientation::from_radians(self.0 + radians)
    }

    /// Averages orientations using the doubled-angle (dyadic) embedding,
    /// optionally weighted. Returns `None` when `items` is empty or the
    /// resultant vector vanishes (perfectly ambiguous input).
    pub fn circular_mean<I>(items: I) -> Option<Orientation>
    where
        I: IntoIterator<Item = (Orientation, f64)>,
    {
        let (mut sx, mut sy, mut n) = (0.0_f64, 0.0_f64, 0usize);
        for (o, w) in items {
            let doubled = 2.0 * o.radians();
            sx += w * doubled.cos();
            sy += w * doubled.sin();
            n += 1;
        }
        if n == 0 || (sx == 0.0 && sy == 0.0) {
            return None;
        }
        Some(Orientation::from_radians(sy.atan2(sx) / 2.0))
    }

    /// Coherence of a set of weighted orientations in `[0, 1]`: 1 when all
    /// orientations agree, 0 when they cancel. Empty input yields 0.
    pub fn coherence<I>(items: I) -> f64
    where
        I: IntoIterator<Item = (Orientation, f64)>,
    {
        let (mut sx, mut sy, mut sw) = (0.0_f64, 0.0_f64, 0.0_f64);
        for (o, w) in items {
            let doubled = 2.0 * o.radians();
            sx += w * doubled.cos();
            sy += w * doubled.sin();
            sw += w;
        }
        if sw <= 0.0 {
            0.0
        } else {
            (sx.hypot(sy) / sw).clamp(0.0, 1.0)
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.0.to_degrees())
    }
}

/// An axis-aligned rectangle in millimetres, used for capture windows and
/// finger extents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from opposite corners; coordinates are sorted so
    /// argument order does not matter.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle centred on `centre` with the given width and
    /// height (mm).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`](crate::Error::InvalidParameter)
    /// when width or height is not strictly positive and finite.
    pub fn centred(centre: Point, width: f64, height: f64) -> crate::Result<Self> {
        if !(width.is_finite() && width > 0.0) {
            return Err(crate::Error::invalid(
                "width",
                format!("{width} must be positive"),
            ));
        }
        if !(height.is_finite() && height > 0.0) {
            return Err(crate::Error::invalid(
                "height",
                format!("{height} must be positive"),
            ));
        }
        let half = Vector::new(width / 2.0, height / 2.0);
        Ok(Rect {
            min: centre - half,
            max: centre + half,
        })
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width in millimetres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in millimetres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre point.
    pub fn centre(&self) -> Point {
        self.min.lerp(&self.max, 0.5)
    }

    /// Area in square millimetres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether `p` lies inside (inclusive of edges).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Intersection with another rectangle, if non-degenerate.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x < max.x && min.y < max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// The smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Shrinks the rectangle by `margin` on every side; `None` if the result
    /// would be degenerate.
    pub fn shrunk(&self, margin: f64) -> Option<Rect> {
        let m = Vector::new(margin, margin);
        let min = self.min + m;
        let max = self.max - m;
        if min.x < max.x && min.y < max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }
}

/// A rigid motion of the plane: rotation about the origin followed by a
/// translation.
///
/// Used to model finger placement on a platen and to test matcher invariance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RigidMotion {
    rotation: Direction,
    translation: Vector,
}

impl RigidMotion {
    /// The identity motion.
    pub const IDENTITY: RigidMotion = RigidMotion {
        rotation: Direction::ZERO,
        translation: Vector::ZERO,
    };

    /// Creates a motion that rotates by `rotation` and then translates by
    /// `translation`.
    pub fn new(rotation: Direction, translation: Vector) -> Self {
        RigidMotion {
            rotation,
            translation,
        }
    }

    /// Pure rotation about the origin.
    pub fn rotation(rotation: Direction) -> Self {
        RigidMotion::new(rotation, Vector::ZERO)
    }

    /// Pure translation.
    pub fn translation(translation: Vector) -> Self {
        RigidMotion::new(Direction::ZERO, translation)
    }

    /// The rotation component.
    pub fn rotation_part(&self) -> Direction {
        self.rotation
    }

    /// The translation component.
    pub fn translation_part(&self) -> Vector {
        self.translation
    }

    /// Applies the motion to a point.
    pub fn apply(&self, p: &Point) -> Point {
        p.rotated(self.rotation) + self.translation
    }

    /// Applies the motion to a direction (rotation only; translation does not
    /// affect angles).
    pub fn apply_direction(&self, d: Direction) -> Direction {
        d.rotated(self.rotation.radians())
    }

    /// Composition: `self.then(&g)` applies `self` first, then `g`.
    pub fn then(&self, g: &RigidMotion) -> RigidMotion {
        // g(f(p)) = R_g (R_f p + t_f) + t_g = (R_g R_f) p + (R_g t_f + t_g)
        let rotated_t = Point::new(self.translation.x, self.translation.y).rotated(g.rotation);
        RigidMotion {
            rotation: self.rotation.rotated(g.rotation.radians()),
            translation: Vector::new(rotated_t.x, rotated_t.y) + g.translation,
        }
    }

    /// The inverse motion: `m.inverse().apply(&m.apply(&p)) == p` up to
    /// floating-point error.
    pub fn inverse(&self) -> RigidMotion {
        let inv_rot = Direction::from_radians(-self.rotation.radians());
        let t = Point::new(-self.translation.x, -self.translation.y).rotated(inv_rot);
        RigidMotion {
            rotation: inv_rot,
            translation: Vector::new(t.x, t.y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn direction_wraps_into_canonical_interval() {
        for k in -5..=5 {
            let d = Direction::from_radians(1.0 + TAU * k as f64);
            assert!(
                (d.radians() - 1.0).abs() < 1e-9,
                "k={k} got {}",
                d.radians()
            );
        }
        assert!(Direction::from_radians(PI).radians() > 0.0);
        assert!(Direction::from_radians(-PI).radians() > 0.0);
    }

    #[test]
    fn direction_signed_delta_is_shortest_rotation() {
        let a = Direction::from_radians(3.0);
        let b = Direction::from_radians(-3.0);
        // going from -3 to 3 the short way crosses pi
        assert!(a.signed_delta(b) < 0.0);
        assert!(a.signed_delta(b).abs() < 1.0);
    }

    #[test]
    fn direction_opposite_is_involution() {
        let d = Direction::from_radians(0.4);
        assert!((d.opposite().opposite().radians() - d.radians()).abs() < EPS);
    }

    #[test]
    fn orientation_separation_max_is_right_angle() {
        let a = Orientation::from_radians(0.0);
        let b = Orientation::from_radians(PI / 2.0);
        assert!((a.separation(b) - PI / 2.0).abs() < EPS);
        let c = Orientation::from_radians(PI - 0.01);
        assert!(a.separation(c) < 0.02);
    }

    #[test]
    fn orientation_mean_handles_wraparound() {
        let items = [
            (Orientation::from_radians(0.05), 1.0),
            (Orientation::from_radians(PI - 0.05), 1.0),
        ];
        let mean = Orientation::circular_mean(items).unwrap();
        // Both orientations are ~horizontal; mean must be near 0 (mod pi).
        assert!(mean.separation(Orientation::HORIZONTAL) < 0.02);
    }

    #[test]
    fn coherence_is_one_for_agreement_zero_for_cancellation() {
        let same = [(Orientation::from_radians(0.3), 1.0); 4];
        assert!((Orientation::coherence(same) - 1.0).abs() < EPS);
        let cancel = [
            (Orientation::from_radians(0.0), 1.0),
            (Orientation::from_radians(PI / 2.0), 1.0),
        ];
        assert!(Orientation::coherence(cancel) < 1e-9);
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::from_corners(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let i = a.intersection(&b).unwrap();
        assert!((i.area() - 1.0).abs() < EPS);
        let u = a.union(&b);
        assert!((u.area() - 9.0).abs() < EPS);
        let far = Rect::from_corners(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn rect_centred_rejects_bad_dimensions() {
        assert!(Rect::centred(Point::ORIGIN, 0.0, 1.0).is_err());
        assert!(Rect::centred(Point::ORIGIN, 1.0, -1.0).is_err());
        assert!(Rect::centred(Point::ORIGIN, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn rigid_motion_inverse_roundtrip() {
        let m = RigidMotion::new(Direction::from_radians(0.7), Vector::new(3.0, -2.0));
        let p = Point::new(1.5, 2.5);
        let q = m.inverse().apply(&m.apply(&p));
        assert!(p.distance(&q) < 1e-9);
    }

    #[test]
    fn rigid_motion_preserves_distances() {
        let m = RigidMotion::new(Direction::from_radians(-1.2), Vector::new(8.0, 1.0));
        let a = Point::new(0.0, 1.0);
        let b = Point::new(4.0, -3.0);
        assert!((m.apply(&a).distance(&m.apply(&b)) - a.distance(&b)).abs() < 1e-9);
    }

    #[test]
    fn point_direction_to_matches_atan2() {
        let a = Point::ORIGIN;
        let b = Point::new(0.0, 2.0);
        assert!((a.direction_to(&b).radians() - PI / 2.0).abs() < EPS);
        assert_eq!(a.direction_to(&a), Direction::ZERO);
    }
}
