//! Smoke tests of the `study` binary: argument handling, report output,
//! JSON export, and the `verify` subcommand.

use std::process::Command;

fn study() -> Command {
    Command::new(env!("CARGO_BIN_EXE_study"))
}

#[test]
fn devices_prints_table1() {
    let out = study().arg("devices").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Cross Match Guardian R2"));
    assert!(
        text.contains("40.6x38.1"),
        "Seek II window missing:\n{text}"
    );
    assert!(text.contains("ink ten-print card"));
}

#[test]
fn single_experiment_runs_at_tiny_scale() {
    let out = study()
        .args(["table3", "--subjects", "6", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DMG"));
    assert!(text.contains("24")); // 6 subjects x 4 devices
}

#[test]
fn json_export_is_valid_and_complete() {
    let dir = std::env::temp_dir().join(format!("fp-study-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("out.json");
    let out = study()
        .args([
            "fig1",
            "--subjects",
            "8",
            "--json",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let raw = std::fs::read_to_string(&path).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    assert_eq!(parsed["config"]["subjects"], 8);
    assert_eq!(parsed["reports"][0]["id"], "fig1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_fails_with_hint() {
    let out = study().arg("table99").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"));
    assert!(err.contains("table5"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = study()
        .args(["all", "--bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn verify_subcommand_reports_findings() {
    // Tiny cohorts are noisy, so only require that the subcommand runs and
    // emits the findings report — pass/fail is checked at scale elsewhere.
    let out = study()
        .args(["verify", "--subjects", "10", "--seed", "1"])
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("same-device-genuine-higher"),
        "missing findings:\n{text}"
    );
    assert!(text.contains("kendall-structure"));
}

#[test]
fn json_export_includes_telemetry_section() {
    let dir = std::env::temp_dir().join(format!("fp-study-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("out.json");
    let metrics_path = dir.join("metrics.json");
    let out = study()
        .args([
            "fig1",
            "--subjects",
            "6",
            "--json",
            json_path.to_str().expect("utf-8 path"),
            "--metrics",
            metrics_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json_path).expect("json written"))
            .expect("valid json");
    let telemetry = &parsed["telemetry"];
    assert!(
        telemetry["counters"]["scores.comparisons.genuine"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(
        telemetry["durations"]["scores.cell.g0p0"]["count"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(!telemetry["stages"].as_array().unwrap().is_empty());

    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).expect("metrics written"))
            .expect("valid json");
    assert_eq!(metrics["counters"], telemetry["counters"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_topic_documents_the_instruments() {
    let out = study().arg("metrics").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("telemetry instruments"));
    assert!(text.contains("scores.comparisons.genuine"));
    assert!(text.contains("--metrics"));
}

#[test]
fn render_writes_pgm_to_out_path() {
    let dir = std::env::temp_dir().join(format!("fp-study-render-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pgm_path = dir.join("print.pgm");
    let out = study()
        .args([
            "render",
            "--seed",
            "3",
            "--out",
            pgm_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&pgm_path).expect("pgm written");
    assert!(bytes.starts_with(b"P5"), "not a binary PGM");
    std::fs::remove_dir_all(&dir).ok();
}
