//! RAII spans: wall-time scopes aggregated into named duration histograms.
//!
//! Spans nest: a span opened while another is live on the same thread gets
//! a dotted path (`study.scores` inside `study`). The name stack is
//! thread-local, so span creation takes no locks beyond the one-time
//! histogram registration, and a disabled handle skips even the clock read.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use crate::hist::HistogramCore;
use crate::Telemetry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

impl Telemetry {
    /// Opens a span; its wall time is recorded into the duration histogram
    /// named by the dotted path of all live spans on this thread when the
    /// guard drops.
    pub fn span(&self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span {
                start: None,
                target: None,
                _not_send: PhantomData,
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}.{name}", stack.join("."))
            };
            stack.push(name.to_string());
            path
        });
        let target = self.duration(&path);
        Span {
            start: Some(Instant::now()),
            target: target.core().cloned(),
            _not_send: PhantomData,
        }
    }
}

/// Guard returned by [`Telemetry::span`]; records on drop.
///
/// Deliberately `!Send`: the dotted path comes from this thread's span
/// stack, so the guard must drop on the thread that opened it.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    target: Option<Arc<HistogramCore>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        if let Some(target) = &self.target {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            target.record(nanos);
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_get_dotted_paths() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            {
                let _inner = t.span("inner");
            }
        }
        let s = t.snapshot();
        assert_eq!(s.durations["outer"].count, 1);
        assert_eq!(s.durations["outer.inner"].count, 2);
        assert!(!s.durations.contains_key("inner"));
    }

    #[test]
    fn sibling_spans_share_a_path() {
        let t = Telemetry::enabled();
        for _ in 0..3 {
            let _span = t.span("stage");
        }
        assert_eq!(t.snapshot().durations["stage"].count, 3);
    }

    #[test]
    fn span_time_accumulates_into_sum() {
        let t = Telemetry::enabled();
        {
            let _span = t.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = t.snapshot().durations["sleepy"];
        assert!(snap.sum >= 5_000_000, "sum = {} ns", snap.sum);
    }

    #[test]
    fn disabled_spans_leave_no_trace_and_no_stack_entry() {
        let t = Telemetry::disabled();
        let enabled = Telemetry::enabled();
        {
            let _noop = t.span("ghost");
            // If the disabled span had pushed onto the stack, this span's
            // path would be "ghost.real".
            let _real = enabled.span("real");
        }
        let s = enabled.snapshot();
        assert_eq!(s.durations["real"].count, 1);
    }
}
