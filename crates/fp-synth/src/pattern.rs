//! Fingerprint pattern classes and their empirical frequencies.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The five Henry pattern classes used by essentially all fingerprint
/// taxonomies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternClass {
    /// Plain arch: ridges enter one side, rise, exit the other. No singular
    /// points.
    Arch,
    /// Tented arch: a steep arch with a core/delta pair stacked vertically.
    TentedArch,
    /// Loop whose ridges enter and exit on the left.
    LeftLoop,
    /// Loop whose ridges enter and exit on the right.
    RightLoop,
    /// Whorl: concentric ridge flow with two cores and two deltas.
    Whorl,
}

impl PatternClass {
    /// All classes, in a stable order.
    pub const ALL: [PatternClass; 5] = [
        PatternClass::Arch,
        PatternClass::TentedArch,
        PatternClass::LeftLoop,
        PatternClass::RightLoop,
        PatternClass::Whorl,
    ];

    /// Empirical class frequencies over human index fingers (Wilson et al.,
    /// NIST: arch 3.7%, tented arch 2.9%, left loop 33.8%, right loop 31.7%,
    /// whorl 27.9%).
    pub const FREQUENCIES: [f64; 5] = [0.037, 0.029, 0.338, 0.317, 0.279];

    /// Draws a pattern class from the empirical distribution.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> PatternClass {
        let idx = fp_core::dist::weighted_index(rng, &Self::FREQUENCIES)
            .expect("FREQUENCIES is a fixed valid distribution");
        Self::ALL[idx]
    }

    /// Number of core singular points for the class.
    pub fn core_count(&self) -> usize {
        match self {
            PatternClass::Arch => 0,
            PatternClass::TentedArch => 1,
            PatternClass::LeftLoop | PatternClass::RightLoop => 1,
            PatternClass::Whorl => 2,
        }
    }

    /// Number of delta singular points for the class.
    pub fn delta_count(&self) -> usize {
        match self {
            PatternClass::Arch => 0,
            PatternClass::TentedArch => 1,
            PatternClass::LeftLoop | PatternClass::RightLoop => 1,
            PatternClass::Whorl => 2,
        }
    }
}

impl fmt::Display for PatternClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PatternClass::Arch => "arch",
            PatternClass::TentedArch => "tented arch",
            PatternClass::LeftLoop => "left loop",
            PatternClass::RightLoop => "right loop",
            PatternClass::Whorl => "whorl",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::rng::SeedTree;
    use std::collections::HashMap;

    #[test]
    fn frequencies_sum_to_one() {
        let total: f64 = PatternClass::FREQUENCIES.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn sampling_tracks_empirical_distribution() {
        let mut rng = SeedTree::new(11).rng();
        let mut counts: HashMap<PatternClass, usize> = HashMap::new();
        let n = 40_000;
        for _ in 0..n {
            *counts.entry(PatternClass::sample(&mut rng)).or_default() += 1;
        }
        for (class, expected) in PatternClass::ALL.iter().zip(PatternClass::FREQUENCIES) {
            let observed = *counts.get(class).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.02,
                "{class}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn singularity_counts_follow_topology() {
        // Poincaré index: cores - deltas is 0 for every flat-capturable class.
        for class in PatternClass::ALL {
            assert_eq!(class.core_count(), class.delta_count(), "{class}");
        }
        assert_eq!(PatternClass::Whorl.core_count(), 2);
        assert_eq!(PatternClass::Arch.core_count(), 0);
    }
}
