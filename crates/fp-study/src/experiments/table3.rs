//! **Table 3** — score-set sizes per matching scenario.
//!
//! At the paper's scale (494 subjects, 24,171 impostor pairs per cell) the
//! counts are exactly the paper's: DMG 1,976 / DDMG 9,880 / DMI 120,855 /
//! DDMI 483,420.

use serde_json::json;

use crate::config::{PAPER_IMPOSTORS_PER_CELL, PAPER_SUBJECTS};
use crate::report::Report;
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let s = &data.scores;
    let measured = [
        ("DMG", s.dmg().len(), 1_976usize),
        ("DDMG", s.ddmg().len(), 9_880),
        ("DMI", s.dmi().len(), 120_855),
        ("DDMI", s.ddmi().len(), 483_420),
    ];
    let config = data.dataset.config();
    let at_paper_scale =
        config.subjects == PAPER_SUBJECTS && config.impostors_per_cell == PAPER_IMPOSTORS_PER_CELL;

    let mut body = format!("{:<8}{:>12}{:>16}\n", "set", "this run", "paper (494 subj)");
    for (name, measured_n, paper_n) in measured {
        body.push_str(&format!("{name:<8}{measured_n:>12}{paper_n:>16}\n"));
    }
    body.push_str(&format!(
        "\nrun scale: {} subjects, {} impostor pairs/cell{}\n",
        config.subjects,
        config.impostors_per_cell,
        if at_paper_scale {
            " (paper scale: counts must match exactly)"
        } else {
            ""
        }
    ));

    Report::new(
        "table3",
        "Score-set sizes per matching scenario (paper Table 3)",
        body,
        json!({
            "dmg": s.dmg().len(),
            "ddmg": s.ddmg().len(),
            "dmi": s.dmi().len(),
            "ddmi": s.ddmi().len(),
            "paper": {"dmg": 1976, "ddmg": 9880, "dmi": 120855, "ddmi": 483420},
            "at_paper_scale": at_paper_scale,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn counts_follow_the_design() {
        let data = testdata::small();
        let r = run(data);
        let subjects = data.dataset.len() as u64;
        assert_eq!(r.values["dmg"].as_u64().unwrap(), subjects * 4);
        assert_eq!(r.values["ddmg"].as_u64().unwrap(), subjects * 20);
        let per_cell = data.dataset.config().impostors_per_cell as u64;
        assert_eq!(r.values["dmi"].as_u64().unwrap(), per_cell * 5);
        assert_eq!(r.values["ddmi"].as_u64().unwrap(), per_cell * 20);
    }

    #[test]
    fn ddmi_is_four_times_dmi_like_the_paper() {
        let r = run(testdata::small());
        assert_eq!(
            r.values["ddmi"].as_u64().unwrap(),
            4 * r.values["dmi"].as_u64().unwrap()
        );
    }
}
