//! Kendall's τ-b rank correlation with tie correction and extreme-tail
//! p-values — the statistical test behind the paper's Table 4.
//!
//! The paper pairs, per subject, the genuine score obtained in one
//! acquisition scenario with the score obtained in another and tests the
//! null hypothesis of no association. With n = 494 and perfect concordance
//! the normal-approximation z-statistic is ≈ 33.2, whose two-sided p-value
//! is ≈ 5e-242 — exactly the magnitude on the paper's diagonal, which is how
//! we know this is the computation they ran.

use crate::special;

/// Result of a Kendall rank-correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KendallTest {
    /// τ-b in `[-1, 1]` (tie-corrected).
    pub tau: f64,
    /// Normal-approximation z-statistic.
    pub z: f64,
    /// Two-sided p-value (may underflow to 0 for extreme z; see
    /// [`KendallTest::log10_p`]).
    pub p_value: f64,
    /// Base-10 log of the two-sided p-value, accurate even when `p_value`
    /// underflows.
    pub log10_p: f64,
}

impl KendallTest {
    /// Formats the p-value in the paper's Table 4 notation.
    pub fn format_p(&self) -> String {
        special::format_p(self.log10_p)
    }
}

/// Runs Kendall's τ-b test on paired samples.
///
/// ```
/// use fp_stats::kendall::kendall_tau_b;
///
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [1.1, 2.3, 2.9, 4.2, 5.5]; // same ordering as x
/// let t = kendall_tau_b(&x, &y).expect("non-degenerate");
/// assert_eq!(t.tau, 1.0);
/// ```
///
/// Returns `None` when the samples have different lengths, fewer than two
/// pairs, or either variable is constant (τ undefined).
///
/// Complexity is O(n²); the study's n = 494 needs ~122k pair comparisons per
/// test, which is microseconds.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> Option<KendallTest> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len();
    let (mut concordant, mut discordant) = (0u64, 0u64);
    let (mut ties_x, mut ties_y, mut ties_xy) = (0u64, 0u64, 0u64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                ties_xy += 1;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let tx = (ties_x + ties_xy) as f64;
    let ty = (ties_y + ties_xy) as f64;
    let denom = ((n0 - tx) * (n0 - ty)).sqrt();
    if denom == 0.0 {
        return None; // a variable is constant
    }
    let s = concordant as f64 - discordant as f64;
    let tau = (s / denom).clamp(-1.0, 1.0);

    // Normal approximation for the null distribution of tau (the classic
    // no-ties variance; with the modest tie counts produced by continuous
    // scores the correction is negligible and this matches the paper's
    // diagonal magnitude exactly).
    let nf = n as f64;
    let sigma = (2.0 * (2.0 * nf + 5.0) / (9.0 * nf * (nf - 1.0))).sqrt();
    let z = tau / sigma;
    Some(KendallTest {
        tau,
        z,
        p_value: special::two_sided_p(z),
        log10_p: special::two_sided_log10_p(z),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_concordance_has_tau_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let t = kendall_tau_b(&x, &x).unwrap();
        assert!((t.tau - 1.0).abs() < 1e-12);
        assert!(t.z > 10.0);
    }

    #[test]
    fn perfect_discordance_has_tau_minus_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| -(i as f64)).collect();
        let t = kendall_tau_b(&x, &y).unwrap();
        assert!((t.tau + 1.0).abs() < 1e-12);
    }

    #[test]
    fn antisymmetry_under_negation() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0, 7.0];
        let y = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        let a = kendall_tau_b(&x, &y).unwrap();
        let b = kendall_tau_b(&x, &neg).unwrap();
        assert!((a.tau + b.tau).abs() < 1e-12);
    }

    #[test]
    fn independent_data_has_small_tau() {
        // Deterministic pseudo-random pairing via hashing.
        let x: Vec<f64> = (0..400u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 11) as f64)
            .collect();
        let y: Vec<f64> = (0..400u64)
            .map(|i| ((i + 7).wrapping_mul(0xBF58476D1CE4E5B9) >> 11) as f64)
            .collect();
        let t = kendall_tau_b(&x, &y).unwrap();
        assert!(t.tau.abs() < 0.1, "tau = {}", t.tau);
        assert!(t.p_value > 1e-3, "p = {}", t.p_value);
    }

    #[test]
    fn paper_diagonal_magnitude_is_reproduced() {
        // tau = 1 with n = 494 must give p ≈ 5e-242 (paper Table 4 diagonal).
        let x: Vec<f64> = (0..494).map(|i| i as f64).collect();
        let t = kendall_tau_b(&x, &x).unwrap();
        assert!(
            (-243.0..=-240.5).contains(&t.log10_p),
            "log10 p = {}",
            t.log10_p
        );
        assert!(
            t.format_p().ends_with("e-242"),
            "formatted: {}",
            t.format_p()
        );
    }

    #[test]
    fn ties_reduce_magnitude_but_keep_range() {
        let x = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [1.0, 2.0, 1.0, 2.0, 3.0, 3.0];
        let t = kendall_tau_b(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&t.tau));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(kendall_tau_b(&[1.0], &[1.0]).is_none());
        assert!(kendall_tau_b(&[1.0, 2.0], &[1.0]).is_none());
        assert!(kendall_tau_b(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn tau_is_symmetric_in_arguments() {
        let x = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.5, 8.5];
        let a = kendall_tau_b(&x, &y).unwrap();
        let b = kendall_tau_b(&y, &x).unwrap();
        assert!((a.tau - b.tau).abs() < 1e-12);
    }
}
