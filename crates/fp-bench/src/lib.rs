//! # fp-bench
//!
//! Criterion benchmarks for the fingerprint-interoperability workspace.
//!
//! The benches are organized by what they regenerate or measure:
//!
//! * `benches/experiments.rs` — **one benchmark per paper table and
//!   figure** (Figures 1–5, Tables 3–6) over a shared small-scale study, so
//!   `cargo bench -p fp-bench --bench experiments` regenerates every
//!   artifact and reports how long each takes;
//! * `benches/pipeline.rs` — throughput of the synthesis/acquisition
//!   pipeline stages (master prints, captures, quality, rendering,
//!   extraction);
//! * `benches/matchers.rs` — matcher comparison latency on genuine and
//!   impostor pairs, direct vs prepared paths;
//! * `benches/ablations.rs` — the design choices called out in DESIGN.md
//!   (kind matching, rotation clustering, size normalization), measured for
//!   both speed and discriminative effect;
//! * `benches/index.rs` — 1:N candidate-index build and search latency vs
//!   an exhaustive brute-force scan, at several gallery sizes.
//!
//! Shared fixtures live here so every bench sees identical inputs.

pub mod diff;

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_sensor::{CaptureProtocol, Impression};
use fp_study::config::StudyConfig;
use fp_study::scores::StudyData;
use fp_synth::population::{Population, PopulationConfig, Subject};

/// Cohort size used by the experiment benches — small enough for quick
/// iterations, large enough that every experiment has meaningful input.
pub const BENCH_SUBJECTS: usize = 24;

/// Impostor pairs per cell for the bench study.
pub const BENCH_IMPOSTORS: usize = 120;

/// The shared bench study configuration.
pub fn bench_config() -> StudyConfig {
    StudyConfig::builder()
        .subjects(BENCH_SUBJECTS)
        .seed(0xBE7C)
        .impostors_per_cell(BENCH_IMPOSTORS)
        .build()
}

/// Generates the shared study data (dataset + score matrices).
pub fn bench_study() -> StudyData {
    StudyData::generate(&bench_config())
}

/// A small deterministic population for pipeline benches.
pub fn bench_population(n: usize) -> Population {
    Population::generate(&PopulationConfig::new(0xBE7C, n))
}

/// A pair of same-finger impressions on the given devices (genuine pair).
pub fn genuine_pair(
    subject: &Subject,
    gallery: DeviceId,
    probe: DeviceId,
) -> (Impression, Impression) {
    let protocol = CaptureProtocol::new();
    (
        protocol.capture(subject, Finger::RIGHT_INDEX, gallery, SessionId(0)),
        protocol.capture(subject, Finger::RIGHT_INDEX, probe, SessionId(1)),
    )
}

/// Templates of a genuine same-device pair and an impostor pair, for the
/// matcher benches.
pub fn matcher_fixtures() -> (Template, Template, Template) {
    let pop = bench_population(2);
    let (gallery, probe) = genuine_pair(&pop.subjects()[0], DeviceId(0), DeviceId(0));
    let protocol = CaptureProtocol::new();
    let impostor = protocol.capture(
        &pop.subjects()[1],
        Finger::RIGHT_INDEX,
        DeviceId(0),
        SessionId(1),
    );
    (
        gallery.template().clone(),
        probe.template().clone(),
        impostor.template().clone(),
    )
}

/// Seed tree root shared by rendering benches.
pub fn bench_seed() -> SeedTree {
    SeedTree::new(0xBE7C)
}

/// A 1:N gallery of `n` D0 session-0 templates plus one genuine probe
/// (subject 0, session 1) for the index benches.
pub fn gallery_fixtures(n: usize) -> (Vec<Template>, Template) {
    let pop = bench_population(n);
    let protocol = CaptureProtocol::new();
    let gallery: Vec<Template> = pop
        .subjects()
        .iter()
        .map(|s| {
            protocol
                .capture(s, Finger::RIGHT_INDEX, DeviceId(0), SessionId(0))
                .template()
                .clone()
        })
        .collect();
    let probe = protocol
        .capture(
            &pop.subjects()[0],
            Finger::RIGHT_INDEX,
            DeviceId(0),
            SessionId(1),
        )
        .template()
        .clone();
    (gallery, probe)
}

/// A 1:N gallery of `n` cheap synthetic minutiae templates plus a jittered
/// genuine probe of subject 0, for the shard benches. Unlike
/// [`gallery_fixtures`] this skips the full synthesis/render/capture
/// pipeline (the same direct sampler `ext-scaling` uses), so thousands of
/// templates are generated in milliseconds — the index only sees minutiae.
pub fn synthetic_gallery(n: usize) -> (Vec<Template>, Template) {
    use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
    use fp_core::minutia::{Minutia, MinutiaKind};
    use rand::Rng;

    let seeds = SeedTree::new(0xBE7C).child(&[0x5A]);
    let template_of = |id: u64, count: usize| -> Template {
        let mut rng = seeds.child(&[0x01, id]).rng();
        let mut minutiae: Vec<Minutia> = Vec::new();
        let mut attempts = 0;
        while minutiae.len() < count && attempts < 10_000 {
            attempts += 1;
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
                continue;
            }
            let kind = if rng.gen::<bool>() {
                MinutiaKind::RidgeEnding
            } else {
                MinutiaKind::Bifurcation
            };
            minutiae.push(Minutia::new(
                pos,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                kind,
                1.0,
            ));
        }
        Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .expect("synthetic template is valid")
    };

    let gallery: Vec<Template> = (0..n).map(|i| template_of(i as u64, 22 + i % 14)).collect();

    // A jittered second capture of subject 0.
    let mut rng = seeds.child(&[0x02]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in gallery[0].minutiae() {
        if rng.gen::<f64>() < 0.06 {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.10),
                m.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.10),
            ),
            m.direction
                .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.04)),
            m.kind,
            m.reliability,
        ));
    }
    let probe = Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .expect("probe template is valid")
        .transformed(&RigidMotion::new(
            Direction::from_radians(0.08),
            Vector::new(0.6, -0.4),
        ));
    (gallery, probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_generatable() {
        let (g, p, i) = matcher_fixtures();
        assert!(g.len() > 5 && p.len() > 5 && i.len() > 5);
    }

    #[test]
    fn bench_config_is_small() {
        let c = bench_config();
        assert_eq!(c.subjects, BENCH_SUBJECTS);
        assert_eq!(c.impostors_per_cell, BENCH_IMPOSTORS);
    }

    #[test]
    fn synthetic_gallery_is_fast_and_deterministic() {
        let (gallery, probe) = synthetic_gallery(64);
        assert_eq!(gallery.len(), 64);
        assert!(probe.len() > 10);
        let (again, probe_again) = synthetic_gallery(64);
        assert_eq!(gallery[17].minutiae(), again[17].minutiae());
        assert_eq!(probe.minutiae(), probe_again.minutiae());
    }
}
