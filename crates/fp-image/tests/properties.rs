//! Property-based tests of the raster substrate.

use fp_image::binarize::{adaptive_binarize, BinaryImage};
use fp_image::image::GrayImage;
use fp_image::morphology::{clean_skeleton, remove_islands};
use fp_image::normalize::normalize;
use fp_image::pgm::{read_pgm, write_pgm};
use fp_image::segment::segment;
use fp_image::thin::zhang_suen;
use proptest::prelude::*;

fn small_image() -> impl Strategy<Value = GrayImage> {
    (4usize..24, 4usize..24).prop_flat_map(|(w, h)| {
        prop::collection::vec(0.0f32..1.0, w * h)
            .prop_map(move |data| GrayImage::from_data(w, h, data).expect("valid dimensions"))
    })
}

fn small_binary() -> impl Strategy<Value = BinaryImage> {
    (4usize..20, 4usize..20).prop_flat_map(|(w, h)| {
        prop::collection::vec(prop::bool::weighted(0.4), w * h)
            .prop_map(move |data| BinaryImage::from_data(w, h, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pgm_roundtrip_is_lossless_up_to_quantization(img in small_image()) {
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).expect("write to memory");
        let back = read_pgm(buf.as_slice()).expect("valid stream");
        prop_assert_eq!(back.width(), img.width());
        prop_assert_eq!(back.height(), img.height());
        for (a, b) in img.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn normalization_hits_target_mean(img in small_image()) {
        let out = normalize(&img, 0.5, 0.02);
        let (mean, _) = out.block_stats(0, 0, out.width(), out.height());
        prop_assert!((mean - 0.5).abs() < 0.12, "mean = {mean}");
    }

    #[test]
    fn thinning_never_adds_pixels(bin in small_binary()) {
        let skel = zhang_suen(&bin);
        prop_assert!(skel.count_ones() <= bin.count_ones());
        // Skeleton is a subset of the input.
        for y in 0..bin.height() as isize {
            for x in 0..bin.width() as isize {
                if skel.at(x, y) {
                    prop_assert!(bin.at(x, y), "skeleton pixel outside input at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn skeleton_cleanup_never_adds_pixels(bin in small_binary()) {
        let skel = zhang_suen(&bin);
        let cleaned = clean_skeleton(&skel, 4, 4);
        prop_assert!(cleaned.count_ones() <= skel.count_ones());
    }

    #[test]
    fn island_removal_threshold_one_is_identity(bin in small_binary()) {
        let out = remove_islands(&bin, 1);
        prop_assert_eq!(out, bin);
    }

    #[test]
    fn binarization_marks_only_foreground(img in small_image()) {
        let mask = segment(&img, 4, 0.3);
        let bin = adaptive_binarize(&img, &mask, 3);
        for y in 0..img.height() {
            for x in 0..img.width() {
                if bin.at(x as isize, y as isize) {
                    prop_assert!(mask.is_foreground(x, y));
                }
            }
        }
    }

    #[test]
    fn segmentation_fraction_is_a_probability(img in small_image()) {
        let mask = segment(&img, 4, 0.3);
        let f = mask.foreground_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        let eroded = mask.eroded();
        prop_assert!(eroded.foreground_fraction() <= f + 1e-12);
    }
}
