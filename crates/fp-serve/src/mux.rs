//! Multiplexed connections: many requests in flight on one TCP stream.
//!
//! [`MuxConn`] is the client half of wire v3's `request_id` field. Callers
//! [`begin`](MuxConn::begin) a request (allocating a fresh id and writing
//! the frame) and later [`finish`](MuxConn::finish) it (blocking until the
//! response carrying that id arrives); any number of begin/finish pairs
//! from any number of threads may overlap on the same connection, and the
//! server is free to answer them in whatever order the work completes.
//!
//! # No background threads
//!
//! The demultiplexer is **caller-driven**: there is no reader thread.
//! Whichever caller is waiting takes exclusive ownership of the socket's
//! read half, reads one frame, and delivers it — to itself, or into the
//! mailbox of whichever other caller owns that id (waking it via condvar).
//! When a caller's response arrives it hands the read half to the next
//! waiter. This keeps lifetimes trivial (no thread to join, no channel to
//! drain on reconnect) while still letting N callers share one socket.
//!
//! # Failure semantics
//!
//! A transport or framing error poisons the connection: every in-flight
//! caller fails loudly, and the next [`begin`] reconnects under a bumped
//! *generation* so stale reads from the dead socket can never be delivered
//! as fresh responses. A response whose id matches no in-flight request is
//! a protocol violation (the peer invented or duplicated an id) and also
//! poisons the connection — a frame is **never** delivered to the wrong
//! caller, and never silently dropped unless its request was already
//! abandoned by a timeout.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::wire::{read_frame_with, write_frame_with, Frame, WireError};

/// How long a waiter parks on the condvar between mailbox checks. Purely a
/// liveness bound (missed-wakeup insurance); the common path is woken
/// explicitly by the caller that read its frame.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// A claim on one in-flight request: returned by [`MuxConn::begin`],
/// consumed by [`MuxConn::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    id: u32,
    generation: u64,
}

impl Ticket {
    /// The request id this ticket's frame went out under.
    pub fn id(&self) -> u32 {
        self.id
    }
}

/// Why a mux operation failed.
#[derive(Debug, Clone)]
pub enum MuxError {
    /// The transport failed (connect, write, read, deadline). Retryable:
    /// the next [`MuxConn::begin`] reconnects.
    Transport {
        /// What happened.
        detail: String,
        /// Whether the failure was a read-deadline expiry.
        timeout: bool,
    },
    /// The peer violated the protocol (undecodable frame, or a response id
    /// matching no in-flight request). Not retryable — resending the same
    /// bytes cannot fix a peer that mis-speaks the protocol.
    Protocol {
        /// What happened.
        detail: String,
    },
}

impl fmt::Display for MuxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuxError::Transport { detail, .. } => write!(f, "transport: {detail}"),
            MuxError::Protocol { detail } => write!(f, "protocol: {detail}"),
        }
    }
}

impl std::error::Error for MuxError {}

/// What poisoned the connection, remembered until the next reconnect.
#[derive(Clone)]
enum Fault {
    Transport { detail: String, timeout: bool },
    Protocol { detail: String },
}

impl Fault {
    fn to_error(&self) -> MuxError {
        match self {
            Fault::Transport { detail, timeout } => MuxError::Transport {
                detail: detail.clone(),
                timeout: *timeout,
            },
            Fault::Protocol { detail } => MuxError::Protocol {
                detail: detail.clone(),
            },
        }
    }
}

struct MuxInner {
    /// Write half; `None` until the first `begin` connects (or after a
    /// fault drops the socket).
    writer: Option<TcpStream>,
    /// Read half (a `try_clone` of the same socket). Taken — `None` —
    /// while some caller of the current generation owns it.
    reader: Option<TcpStream>,
    /// Responses read on behalf of other callers, by request id, with the
    /// wire bytes each response consumed.
    mailbox: HashMap<u32, (Frame, usize)>,
    /// Ids with a caller still waiting.
    expected: HashSet<u32>,
    /// Ids whose caller gave up (deadline). A late response to one of
    /// these is dropped silently instead of counting as unsolicited.
    abandoned: HashSet<u32>,
    /// Why the connection is unusable, if it is.
    fault: Option<Fault>,
    /// Bumped on every (re)connect; tickets from older generations fail.
    generation: u64,
}

/// One multiplexed client connection (see the module docs).
pub struct MuxConn {
    addr: SocketAddr,
    deadline: Duration,
    inner: Mutex<MuxInner>,
    ready: Condvar,
    next_id: AtomicU32,
    peak_in_flight: AtomicUsize,
}

impl MuxConn {
    /// Creates a handle to `addr`; the socket is opened lazily by the
    /// first [`begin`](Self::begin). `deadline` bounds connect, write and
    /// per-response waits.
    pub fn new(addr: SocketAddr, deadline: Duration) -> MuxConn {
        MuxConn {
            addr,
            deadline,
            inner: Mutex::new(MuxInner {
                writer: None,
                reader: None,
                mailbox: HashMap::new(),
                expected: HashSet::new(),
                abandoned: HashSet::new(),
                fault: None,
                generation: 0,
            }),
            ready: Condvar::new(),
            next_id: AtomicU32::new(1),
            peak_in_flight: AtomicUsize::new(0),
        }
    }

    /// The highest number of requests ever simultaneously in flight on
    /// this connection.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight.load(Ordering::Relaxed)
    }

    /// Writes `frame` under a fresh request id, returning a [`Ticket`] to
    /// [`finish`](Self::finish) with and the bytes put on the wire.
    /// Reconnects if the connection is down or poisoned (failing any
    /// requests still in flight from the previous socket).
    pub fn begin(&self, frame: &Frame) -> Result<(Ticket, usize), MuxError> {
        let mut inner = self.inner.lock().expect("mux lock poisoned");
        if inner.writer.is_none() || inner.fault.is_some() {
            self.reconnect(&mut inner)?;
        }
        let mut id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Skip 0 (the un-multiplexed conventional id) and, after a u32
        // wrap, any id still in flight.
        while id == 0 || inner.expected.contains(&id) || inner.abandoned.contains(&id) {
            id = self.next_id.fetch_add(1, Ordering::Relaxed);
        }
        let writer = inner.writer.as_mut().expect("connected above");
        let tx = match write_frame_with(writer, id, frame) {
            Ok(tx) => tx,
            Err(e) => {
                let fault = Fault::Transport {
                    detail: format!("write: {e}"),
                    timeout: false,
                };
                let err = fault.to_error();
                self.poison(&mut inner, fault);
                return Err(err);
            }
        };
        inner.expected.insert(id);
        let in_flight = inner.expected.len() + inner.mailbox.len();
        self.peak_in_flight.fetch_max(in_flight, Ordering::Relaxed);
        Ok((
            Ticket {
                id,
                generation: inner.generation,
            },
            tx,
        ))
    }

    /// Blocks until the response for `ticket` arrives, returning it with
    /// the wire bytes it consumed. While waiting, this caller may service
    /// the socket on behalf of every other waiter (see the module docs).
    pub fn finish(&self, ticket: Ticket) -> Result<(Frame, usize), MuxError> {
        let start = Instant::now();
        let mut inner = self.inner.lock().expect("mux lock poisoned");
        loop {
            if let Some(delivered) = inner.mailbox.remove(&ticket.id) {
                return Ok(delivered);
            }
            if inner.generation != ticket.generation {
                return Err(MuxError::Transport {
                    detail: "connection was reset while the request was in flight".to_string(),
                    timeout: false,
                });
            }
            if let Some(fault) = &inner.fault {
                let err = fault.to_error();
                inner.expected.remove(&ticket.id);
                return Err(err);
            }
            if start.elapsed() >= self.deadline {
                // Give up on this request but keep the connection: a late
                // response to an abandoned id is dropped, not mis-routed.
                inner.expected.remove(&ticket.id);
                inner.abandoned.insert(ticket.id);
                return Err(MuxError::Transport {
                    detail: format!("no response within {:?}", self.deadline),
                    timeout: true,
                });
            }
            if let Some(mut reader) = inner.reader.take() {
                // Read without the lock so other callers can begin and
                // pick up their own deliveries meanwhile.
                drop(inner);
                let result = read_frame_with(&mut reader);
                inner = self.inner.lock().expect("mux lock poisoned");
                self.deliver(&mut inner, reader, ticket.generation, result);
                self.ready.notify_all();
            } else {
                let (guard, _timeout) = self
                    .ready
                    .wait_timeout(inner, WAIT_SLICE)
                    .expect("mux lock poisoned");
                inner = guard;
            }
        }
    }

    /// One request/response exchange: [`begin`](Self::begin) +
    /// [`finish`](Self::finish). Returns the response frame and the
    /// (tx, rx) wire byte counts.
    pub fn call(&self, frame: &Frame) -> Result<(Frame, usize, usize), MuxError> {
        let (ticket, tx) = self.begin(frame)?;
        let (response, rx) = self.finish(ticket)?;
        Ok((response, tx, rx))
    }

    /// Delivers the outcome of one socket read (performed with the mux
    /// lock released): into the mailbox of whichever request it answers,
    /// or into a poisoned state if the peer mis-spoke.
    fn deliver(
        &self,
        inner: &mut MuxInner,
        reader: TcpStream,
        generation: u64,
        result: Result<(u32, Frame, usize), WireError>,
    ) {
        if inner.generation != generation {
            // The connection was torn down and re-opened while we were
            // reading: whatever we read came from the dead socket. Drop
            // it — and the stale socket — on the floor.
            return;
        }
        match result {
            Ok((id, frame, rx)) => {
                if inner.expected.remove(&id) {
                    inner.mailbox.insert(id, (frame, rx));
                    inner.reader = Some(reader);
                } else if inner.abandoned.remove(&id) {
                    // Late answer to a timed-out request: dropped.
                    inner.reader = Some(reader);
                } else {
                    self.poison(
                        inner,
                        Fault::Protocol {
                            detail: format!(
                                "unsolicited response id {id} ('{}' frame)",
                                frame.kind()
                            ),
                        },
                    );
                }
            }
            Err(e) => {
                let fault = match e {
                    WireError::Io(_) | WireError::Truncated { .. } => Fault::Transport {
                        timeout: e.is_timeout(),
                        detail: format!("read: {e}"),
                    },
                    other => Fault::Protocol {
                        detail: format!("read: {other}"),
                    },
                };
                self.poison(inner, fault);
            }
        }
    }

    /// Marks the connection unusable and drops both socket halves. Every
    /// waiter observes the fault on its next loop iteration.
    fn poison(&self, inner: &mut MuxInner, fault: Fault) {
        inner.fault = Some(fault);
        inner.writer = None;
        inner.reader = None;
        self.ready.notify_all();
    }

    /// Opens a fresh socket under a bumped generation. In-flight requests
    /// from the previous generation fail with a reset error when their
    /// callers next look.
    fn reconnect(&self, inner: &mut MuxInner) -> Result<(), MuxError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.deadline)
            .and_then(|s| {
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(self.deadline))?;
                s.set_write_timeout(Some(self.deadline))?;
                Ok(s)
            })
            .map_err(|e| MuxError::Transport {
                detail: format!("connect {}: {e}", self.addr),
                timeout: false,
            })?;
        let reader = stream.try_clone().map_err(|e| MuxError::Transport {
            detail: format!("clone socket: {e}"),
            timeout: false,
        })?;
        inner.generation += 1;
        inner.writer = Some(stream);
        inner.reader = Some(reader);
        inner.mailbox.clear();
        inner.expected.clear();
        inner.abandoned.clear();
        inner.fault = None;
        self.ready.notify_all();
        Ok(())
    }
}
