//! # fp-synth
//!
//! Synthetic fingerprint identities ("master prints") for the
//! interoperability study.
//!
//! The DSN'13 paper collected prints from 494 human participants — data that
//! was never released. This crate substitutes a parametric generative model in
//! the spirit of SFinGe (Cappelli et al.): each `(subject, finger)` pair owns
//! a deterministic [`MasterPrint`] consisting of
//!
//! * a **pattern class** drawn from the empirical distribution of human
//!   fingerprint classes ([`pattern::PatternClass`]),
//! * a **ridge orientation field** built from the Sherlock–Monro zero-pole
//!   model (loops/whorls/tented arches) or a smooth analytic arch model
//!   ([`field::OrientationField`]),
//! * a **ridge frequency map** with subject- and position-dependent ridge
//!   period ([`frequency::RidgeFrequencyMap`]),
//! * a **finger-pad region** (an ellipse with per-finger shape variation,
//!   [`region::FingerRegion`]), and
//! * a set of **master minutiae** sampled by Poisson-disc rejection inside
//!   the pad, with directions that follow the local ridge flow
//!   ([`master::MasterPrint`]).
//!
//! [`population::Population`] wraps this into a study-ready cohort with the
//! demographics reported in the paper's Figure 1.
//!
//! Everything is a pure function of a seed, so the full 494-subject cohort is
//! reproducible bit-for-bit.
//!
//! ```
//! use fp_synth::population::{Population, PopulationConfig};
//! use fp_core::ids::Finger;
//!
//! let pop = Population::generate(&PopulationConfig::new(42, 10));
//! let subject = &pop.subjects()[3];
//! let master = subject.master_print(Finger::RIGHT_INDEX);
//! assert!(master.minutiae().len() > 20);
//! ```

pub mod field;
pub mod frequency;
pub mod master;
pub mod metrics;
pub mod pattern;
pub mod population;
pub mod region;

pub use master::MasterPrint;
pub use pattern::PatternClass;
pub use population::{Population, PopulationConfig, Subject};
