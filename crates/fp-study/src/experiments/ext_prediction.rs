//! **Extension: probabilistic FNM prediction** (paper §V, future work).
//!
//! "What is the probability that I will have a False Non-Match pertaining
//! to a user enrolled using Device X and verified using Device Y?" — the
//! point estimate is the cell's FNMR at the operating threshold; this
//! report attaches percentile-bootstrap confidence intervals so the answer
//! is usable as a prediction.

use fp_core::ids::DeviceId;
use fp_stats::bootstrap::bootstrap_ci;
use serde_json::json;

use crate::report::{render_device_matrix, Report};
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let fmr = data.dataset.config().table5_fmr;
    let mut estimates = vec![vec![0.0; 5]; 5];
    let mut lowers = vec![vec![0.0; 5]; 5];
    let mut uppers = vec![vec![0.0; 5]; 5];
    for g in 0..5u8 {
        for p in 0..5u8 {
            let set = data.scores.score_set(DeviceId(g), DeviceId(p));
            let threshold = set.threshold_at_fmr(fmr);
            let genuine = data.scores.genuine_values(DeviceId(g), DeviceId(p));
            let fnm_rate = |xs: &[f64]| {
                xs.iter().filter(|&&s| s < threshold).count() as f64 / xs.len().max(1) as f64
            };
            let ci = bootstrap_ci(
                &genuine,
                fnm_rate,
                400,
                0.95,
                data.dataset.config().seed ^ ((g as u64) << 8 | p as u64),
            )
            .expect("non-empty genuine cell");
            estimates[g as usize][p as usize] = ci.estimate;
            lowers[g as usize][p as usize] = ci.lower;
            uppers[g as usize][p as usize] = ci.upper;
        }
    }

    let mut body = render_device_matrix(
        &format!(
            "P(false non-match) at FMR = {:.4}% (point estimate):",
            fmr * 100.0
        ),
        |g, p| format!("{:.2e}", estimates[g][p]),
    );
    body.push_str(&render_device_matrix("\n95% CI upper bound:", |g, p| {
        format!("{:.2e}", uppers[g][p])
    }));
    body.push_str(
        "\nreading: enroll on the row device, verify on the column device; the upper\n\
         bound is what a deployment should budget for\n",
    );

    Report::new(
        "ext-prediction",
        "Predicted FNM probability with bootstrap CIs (paper §V future work)",
        body,
        json!({
            "fmr": fmr,
            "estimate": estimates,
            "ci_lower": lowers,
            "ci_upper": uppers,
            "confidence": 0.95,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn intervals_bracket_estimates() {
        let r = run(testdata::small());
        for g in 0..5 {
            for p in 0..5 {
                let e = r.values["estimate"][g][p].as_f64().unwrap();
                let lo = r.values["ci_lower"][g][p].as_f64().unwrap();
                let hi = r.values["ci_upper"][g][p].as_f64().unwrap();
                assert!(lo <= e && e <= hi, "cell ({g},{p}): [{lo}, {hi}] vs {e}");
            }
        }
    }

    #[test]
    fn probabilities_are_valid() {
        let r = run(testdata::small());
        for g in 0..5 {
            for p in 0..5 {
                let hi = r.values["ci_upper"][g][p].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&hi));
            }
        }
    }
}
