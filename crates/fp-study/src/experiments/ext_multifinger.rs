//! **Extension: multi-finger fusion** (paper §V, future work).
//!
//! "Using more than one fingerprint image from a given participant to
//! improve the FMR and FNMR rates." We capture the right *middle* finger in
//! addition to the study's right index finger for a subset of the cohort,
//! fuse per-subject scores with the sum rule, and compare single-finger vs
//! two-finger FNMR at a fixed FMR in the hardest scenario (ink-card gallery
//! vs live-scan probe) and an easy one (same-device D0).

use fp_core::ids::{DeviceId, Digit, Finger, Hand, SessionId, SubjectId};
use fp_core::Matcher;
use fp_match::PairTableMatcher;
use fp_sensor::CaptureProtocol;
use fp_stats::roc::ScoreSet;
use serde_json::json;

use crate::parallel::parallel_map;
use crate::report::Report;
use crate::scores::StudyData;

const RIGHT_MIDDLE: Finger = Finger {
    hand: Hand::Right,
    digit: Digit::Middle,
};

/// Evaluated scenario.
struct Scenario {
    label: &'static str,
    gallery: DeviceId,
    probe: DeviceId,
}

/// Runs the experiment.
#[allow(clippy::needless_range_loop)] // per-subject parallel arrays
pub fn run(data: &StudyData) -> Report {
    let subjects = data.dataset.len().min(80);
    let protocol = CaptureProtocol::new();
    let matcher = PairTableMatcher::default();
    let calibration = data.dataset.config().calibration;
    let scenarios = [
        Scenario {
            label: "same-device D0",
            gallery: DeviceId(0),
            probe: DeviceId(0),
        },
        Scenario {
            label: "ink gallery D4 -> probe D0",
            gallery: DeviceId(4),
            probe: DeviceId(0),
        },
    ];

    // Middle-finger captures for the subset (index-finger captures come
    // from the shared dataset).
    let middle: Vec<_> = parallel_map(subjects, |s| {
        let subject = data.dataset.subject(SubjectId(s as u32));
        DeviceId::ALL.map(|d| {
            (
                protocol.capture(subject, RIGHT_MIDDLE, d, SessionId(0)),
                protocol.capture(subject, RIGHT_MIDDLE, d, SessionId(1)),
            )
        })
    });

    let mut rows = Vec::new();
    for scenario in &scenarios {
        let mut single_g = Vec::new();
        let mut fused_g = Vec::new();
        for s in 0..subjects {
            let id = SubjectId(s as u32);
            let index_score = data
                .dataset
                .genuine_score(&matcher, id, scenario.gallery, scenario.probe)
                .value();
            let m_gal = &middle[s][scenario.gallery.0 as usize].0;
            let m_probe = &middle[s][scenario.probe.0 as usize].1;
            let middle_score = calibration
                .apply(matcher.compare(m_gal.template(), m_probe.template()))
                .value();
            single_g.push(index_score);
            fused_g.push((index_score + middle_score) / 2.0);
        }
        // Impostor sets: single-finger from the shared matrix; two-finger by
        // fusing the cell impostors pairwise with a shifted copy (distinct
        // subjects, deterministic).
        let single_i = data
            .scores
            .impostor_cell(scenario.gallery, scenario.probe)
            .to_vec();
        // Pair each impostor score with its successor (wrapping): always two
        // distinct comparisons, unlike a reverse-zip whose middle element
        // would fuse with itself.
        let fused_i: Vec<f64> = single_i
            .iter()
            .zip(single_i.iter().cycle().skip(1))
            .map(|(&a, &b)| (a + b) / 2.0)
            .collect();
        let fmr = data.dataset.config().table5_fmr;
        let single = ScoreSet::new(single_g, single_i).fnmr_at_fmr(fmr);
        let fused = ScoreSet::new(fused_g, fused_i).fnmr_at_fmr(fmr);
        rows.push((scenario.label, single, fused));
    }

    let mut body = format!(
        "subjects: {subjects}\n\n{:<30}{:>16}{:>16}\n",
        "scenario", "1 finger FNMR", "2 fingers FNMR"
    );
    for (label, single, fused) in &rows {
        body.push_str(&format!("{label:<30}{single:>16.4}{fused:>16.4}\n"));
    }
    body.push_str(
        "\nsum-rule fusion of right index + right middle; two fingers cut the\n\
         false-non-match rate, most visibly in the cross-device scenario\n",
    );

    Report::new(
        "ext-multifinger",
        "Multi-finger fusion (paper §V future work)",
        body,
        json!({
            "subjects": subjects,
            "rows": rows
                .iter()
                .map(|(l, s, f)| json!({"scenario": l, "single": s, "fused": f}))
                .collect::<Vec<_>>(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn both_scenarios_are_reported() {
        let r = run(testdata::small());
        assert_eq!(r.values["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn fusion_does_not_hurt() {
        let r = run(testdata::small());
        for row in r.values["rows"].as_array().unwrap() {
            let single = row["single"].as_f64().unwrap();
            let fused = row["fused"].as_f64().unwrap();
            assert!(
                fused <= single + 0.1,
                "{}: fused {fused} worse than single {single}",
                row["scenario"]
            );
        }
    }
}
