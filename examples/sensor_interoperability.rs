//! The headline experiment in miniature: the 5x5 genuine-score and FNMR
//! matrices over all device pairs — the US-VISIT scenario ("enrolled on the
//! airport scanner, verified on something else") that motivates the paper.
//!
//! ```sh
//! cargo run --release --example sensor_interoperability -- 80
//! ```

use fingerprint_interop::prelude::*;
use fp_study::config::StudyConfig;
use fp_study::scores::StudyData;

fn main() {
    let subjects = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60usize);
    eprintln!("running {subjects}-subject study (use `-- N` to change) ...");
    let config = StudyConfig::builder().subjects(subjects).seed(2013).build();
    let data = StudyData::generate(&config);

    println!("\nmean genuine score by (gallery device row, probe device column):");
    print!("      ");
    for p in DeviceId::ALL {
        print!("{:>9}", p.to_string());
    }
    println!();
    for g in DeviceId::ALL {
        print!("  {:<4}", g.to_string());
        for p in DeviceId::ALL {
            let xs = data.scores.genuine_values(g, p);
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            print!("{mean:>9.1}");
        }
        println!();
    }

    println!("\nFNMR at FMR = 0.01% (the paper's Table 5):");
    print!("      ");
    for p in DeviceId::ALL {
        print!("{:>10}", p.to_string());
    }
    println!();
    for g in DeviceId::ALL {
        print!("  {:<4}", g.to_string());
        for p in DeviceId::ALL {
            let fnmr = data.scores.score_set(g, p).fnmr_at_fmr(1e-4);
            print!("{:>10}", format!("{fnmr:.1e}"));
        }
        println!();
    }

    println!(
        "\nreading guide (paper findings): the diagonal is lowest except {{D1,D1}}\n\
         (noisy optics) and {{D3,D3}} (small capture window); the ink card D4 is\n\
         the least interoperable source but its own rescans match best of all."
    );
}
