#!/usr/bin/env bash
# Full local gate: formatting, lints, release build, tests, bench
# compilation, and the 1:N scaling smoke run.
# Mirrors .github/workflows/ci.yml so CI never surprises you.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --offline
# Workspace tests include the fp-index exactness/recall property suite and
# the fp-study golden-regression + determinism suite.
run cargo test -q --release --offline --workspace
# Benches must at least compile; running them is opt-in (`cargo bench`).
run cargo bench --offline --no-run
# 1:N scaling smoke: a 200-subject ladder (200/1000/2000 galleries) must
# finish inside a 10-minute wall-clock budget and keep shortlist recall
# at spec on every rung.
run timeout 600 cargo run -q --release --offline -p fp-study --bin study -- \
    ext-scaling --subjects 200 --json target/ext-scaling-smoke.json
python3 - <<'EOF'
import json
report = json.load(open("target/ext-scaling-smoke.json"))["reports"][0]
for row in report["values"]["rows"]:
    assert row["recall"] >= 0.98, f"shortlist recall regressed: {row}"
    assert row["audit_agreed"] == row["audit_sampled"], f"audit mismatch: {row}"
print("ext-scaling smoke ok")
EOF
echo "all checks passed"
