//! Descriptive statistics.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance; 0 for n < 2.
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; `None` for an empty sample.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in data {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            variance,
            min,
            max,
        })
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Linearly interpolated quantile (type-7, the numpy/R default) of an
/// **unsorted** sample; `None` for an empty sample or `q` outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Type-7 quantile of an already **sorted** sample.
///
/// # Panics
///
/// Panics when `data` is empty.
pub fn quantile_sorted(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let h = (data.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        data[lo]
    } else {
        data[lo] + (h - lo as f64) * (data[hi] - data[lo])
    }
}

/// Median of an unsorted sample.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_element_summary() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(median(&data), Some(2.5));
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_is_order_insensitive() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }
}
