//! The finger-pad region: where ridges (and therefore minutiae) exist.
//!
//! Modelled as an axis-aligned ellipse centred on the pad with per-finger
//! size variation. Thumbs are wider than little fingers; the study only
//! matches right index fingers but the whole hand is generatable for the
//! multi-finger fusion extension.

use rand::Rng;

use fp_core::dist;
use fp_core::geometry::{Point, Rect};
use fp_core::ids::Digit;

/// An elliptical finger-pad region in finger-centred millimetres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerRegion {
    /// Semi-axis along x (half-width of the pad), mm.
    pub semi_x: f64,
    /// Semi-axis along y (half-length of the pad), mm.
    pub semi_y: f64,
    /// Centre offset of the pad ellipse (usually near the origin).
    pub centre: Point,
}

impl FingerRegion {
    /// Mean pad half-width/half-length by digit (mm). Derived from
    /// anthropometric finger-breadth tables; thumbs broadest, little fingers
    /// narrowest.
    fn mean_semi_axes(digit: Digit) -> (f64, f64) {
        match digit {
            Digit::Thumb => (10.5, 13.0),
            Digit::Index => (9.0, 12.0),
            Digit::Middle => (9.3, 12.5),
            Digit::Ring => (8.8, 12.0),
            Digit::Little => (7.5, 10.5),
        }
    }

    /// Generates a pad region for `digit`, with a subject-level `size_factor`
    /// (1.0 = average hand) and per-finger variation from `rng`.
    pub fn generate<R: Rng + ?Sized>(digit: Digit, size_factor: f64, rng: &mut R) -> Self {
        let (mx, my) = Self::mean_semi_axes(digit);
        FingerRegion {
            semi_x: mx * size_factor * dist::truncated_normal(rng, 1.0, 0.05, 0.85, 1.15),
            semi_y: my * size_factor * dist::truncated_normal(rng, 1.0, 0.05, 0.85, 1.15),
            centre: Point::new(dist::normal(rng, 0.0, 0.3), dist::normal(rng, 0.0, 0.3)),
        }
    }

    /// Whether `p` lies on the ridge-bearing pad.
    pub fn contains(&self, p: &Point) -> bool {
        let dx = (p.x - self.centre.x) / self.semi_x;
        let dy = (p.y - self.centre.y) / self.semi_y;
        dx * dx + dy * dy <= 1.0
    }

    /// Pad area in square millimetres.
    pub fn area_mm2(&self) -> f64 {
        std::f64::consts::PI * self.semi_x * self.semi_y
    }

    /// Tight axis-aligned bounding box of the pad.
    pub fn bounding_box(&self) -> Rect {
        Rect::from_corners(
            Point::new(self.centre.x - self.semi_x, self.centre.y - self.semi_y),
            Point::new(self.centre.x + self.semi_x, self.centre.y + self.semi_y),
        )
    }

    /// Samples a uniform point inside the pad.
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let (x, y) = dist::unit_disc(rng);
        Point::new(
            self.centre.x + x * self.semi_x,
            self.centre.y + y * self.semi_y,
        )
    }

    /// A scaled copy of the region (used to model the smaller flat-contact
    /// area under light pressure).
    pub fn scaled(&self, factor: f64) -> FingerRegion {
        FingerRegion {
            semi_x: self.semi_x * factor,
            semi_y: self.semi_y * factor,
            centre: self.centre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::rng::SeedTree;

    fn region(seed: u64) -> FingerRegion {
        let mut rng = SeedTree::new(seed).rng();
        FingerRegion::generate(Digit::Index, 1.0, &mut rng)
    }

    #[test]
    fn sampled_points_are_inside() {
        let r = region(1);
        let mut rng = SeedTree::new(2).rng();
        for _ in 0..2000 {
            let p = r.sample_point(&mut rng);
            assert!(r.contains(&p), "{p:?} outside region");
        }
    }

    #[test]
    fn bounding_box_contains_region_boundary() {
        let r = region(3);
        let bb = r.bounding_box();
        assert!(bb.contains(&Point::new(r.centre.x + r.semi_x - 1e-9, r.centre.y)));
        assert!((bb.area() - 4.0 * r.semi_x * r.semi_y).abs() < 1e-9);
    }

    #[test]
    fn index_finger_area_is_anatomically_plausible() {
        for seed in 0..10 {
            let a = region(seed).area_mm2();
            assert!((180.0..500.0).contains(&a), "area = {a}");
        }
    }

    #[test]
    fn thumbs_are_larger_than_little_fingers() {
        let mut rng = SeedTree::new(9).rng();
        let thumb = FingerRegion::generate(Digit::Thumb, 1.0, &mut rng);
        let little = FingerRegion::generate(Digit::Little, 1.0, &mut rng);
        assert!(thumb.area_mm2() > little.area_mm2());
    }

    #[test]
    fn scaling_shrinks_area_quadratically() {
        let r = region(4);
        let s = r.scaled(0.5);
        assert!((s.area_mm2() - r.area_mm2() * 0.25).abs() < 1e-9);
        assert_eq!(s.centre, r.centre);
    }
}
