//! The flight recorder: a hierarchical span tree in a bounded lock-free
//! buffer, exportable as Chrome trace-event JSON.
//!
//! Where the duration histograms answer "how long does this stage take on
//! average", the trace answers "what did this *particular* run do, when,
//! and on which thread" — a replayable timeline for the 616k-comparison
//! study. Every span carries an id, its parent's id, the thread lane it ran
//! on, and free-form attributes (device pair, experiment, subject), so the
//! tree can be reassembled after the fact and loaded into
//! `chrome://tracing` / Perfetto.
//!
//! ## Parenting
//!
//! Within a thread, parents come from the same thread-local stack the
//! dotted histogram paths use. Across threads the link is explicit: the
//! spawning side captures a [`TraceCtx`] (the current span's id) and each
//! worker adopts it with [`Telemetry::in_ctx`], so spans opened on worker
//! threads parent to the span that launched the stage. `fp-study`'s
//! `parallel_map_metered` does this automatically.
//!
//! ## The buffer
//!
//! Records land in a fixed-capacity slot buffer: a `fetch_add` claims a
//! slot, the record is written once, and a per-slot release flag publishes
//! it. No locks, no reallocation, no unbounded growth — when the buffer is
//! full further records are counted as dropped, never blocking the
//! pipeline. Span ids keep incrementing, so a truncated trace still has a
//! consistent tree among the records it retained.
//!
//! ## Time
//!
//! Timestamps are nanoseconds since the handle's creation (`Instant`-based,
//! monotonic). They vary run to run; the *structure* — span names, parents,
//! attributes, per-name counts — is a pure function of the seed, mirroring
//! the counters/durations determinism split.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::event::EventRecord;
use crate::span;
use crate::Telemetry;

/// Default capacity of the span buffer (records, not bytes).
pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;
/// Default capacity of the event buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 8 * 1024;
/// Process lane of spans recorded by this process. Remote spans merged via
/// [`TraceSnapshot::merge_remote`] get `shard + 1 + LOCAL_PID`.
pub const LOCAL_PID: u64 = 1;

/// Stable small integer identifying the current OS thread's trace lane.
pub(crate) fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|lane| *lane)
}

/// One finished span, as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within this telemetry handle (creation order).
    pub id: u64,
    /// Parent span id; `None` for a root.
    pub parent: Option<u64>,
    /// Span name (no dotted path — the tree carries the structure).
    pub name: String,
    /// Process lane: [`LOCAL_PID`] for spans recorded by this process;
    /// spans merged from a remote shard k carry `k + 1 +` [`LOCAL_PID`]
    /// (see [`TraceSnapshot::merge_remote`]). Chrome exports use it as the
    /// `pid`, giving each shard process its own lane group.
    pub pid: u64,
    /// Trace lane of the thread that ran the span.
    pub thread: u64,
    /// Start, in nanoseconds since the telemetry handle was created.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Free-form attributes (device pair, experiment, subject batch, ...).
    pub attrs: Vec<(String, String)>,
}

/// A bounded multi-producer slot buffer: lock-free claims, write-once
/// slots, drop counting when full.
#[derive(Debug)]
pub(crate) struct SlotBuffer<T> {
    slots: Box<[Slot<T>]>,
    head: AtomicUsize,
    dropped: AtomicU64,
}

#[derive(Debug)]
struct Slot<T> {
    ready: AtomicBool,
    value: UnsafeCell<Option<T>>,
}

// SAFETY: each slot is written exactly once, by the thread that claimed its
// index via `head.fetch_add`, before `ready` is released; readers only
// dereference after acquiring `ready`.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> SlotBuffer<T> {
    fn new(capacity: usize) -> SlotBuffer<T> {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Slot {
            ready: AtomicBool::new(false),
            value: UnsafeCell::new(None),
        });
        SlotBuffer {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends `value`; returns false (and counts a drop) when full.
    pub(crate) fn push(&self, value: T) -> bool {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: index `i` was claimed exclusively by this thread.
        unsafe { *self.slots[i].value.get() = Some(value) };
        self.slots[i].ready.store(true, Ordering::Release);
        true
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        let n = self.head.load(Ordering::Relaxed).min(self.slots.len());
        (0..n)
            .filter(|&i| self.slots[i].ready.load(Ordering::Acquire))
            .map(|i| {
                // SAFETY: `ready` was acquired, so the write has happened
                // and no further writes can touch this slot.
                unsafe {
                    (*self.slots[i].value.get())
                        .clone()
                        .expect("ready slot is filled")
                }
            })
            .collect()
    }
}

/// The per-handle flight recorder state.
#[derive(Debug)]
pub(crate) struct TraceBuffer {
    pub(crate) epoch: Instant,
    next_span_id: AtomicU64,
    spans: SlotBuffer<SpanRecord>,
    events: SlotBuffer<EventRecord>,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::with_capacity(DEFAULT_SPAN_CAPACITY, DEFAULT_EVENT_CAPACITY)
    }
}

impl TraceBuffer {
    pub(crate) fn with_capacity(spans: usize, events: usize) -> TraceBuffer {
        TraceBuffer {
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(0),
            spans: SlotBuffer::new(spans),
            events: SlotBuffer::new(events),
        }
    }

    /// Nanoseconds since the handle was created.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        self.spans.push(record);
    }

    pub(crate) fn push_event(&self, record: EventRecord) {
        self.events.push(record);
    }

    pub(crate) fn snapshot(&self) -> TraceSnapshot {
        let mut spans = self.spans.snapshot();
        // Completion order is non-deterministic across threads; sort by
        // (thread, start) so exports and diffs are stable.
        spans.sort_by_key(|s| (s.thread, s.start_ns, s.id));
        let mut events = self.events.snapshot();
        events.sort_by_key(|e| (e.ts_ns, e.thread));
        TraceSnapshot {
            spans,
            events,
            dropped_spans: self.spans.dropped(),
            dropped_events: self.events.dropped(),
        }
    }

    /// `(dropped spans, dropped events)` without materializing a snapshot
    /// — feeds the metrics snapshot's trace-health section.
    pub(crate) fn dropped_counts(&self) -> (u64, u64) {
        (self.spans.dropped(), self.events.dropped())
    }
}

/// Captured parent context for handing span parenting across threads.
///
/// Capture it on the spawning thread with [`Telemetry::trace_ctx`], move it
/// into the worker (it is `Send + Sync`), and adopt it there with
/// [`Telemetry::in_ctx`]: spans the worker opens while the guard lives are
/// parented to the span that was live at capture time.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    pub(crate) parent: Option<u64>,
    pub(crate) live: bool,
}

impl TraceCtx {
    /// A context that adopts an explicit span id — the seam the shard
    /// server uses to nest its worker-side spans under the span it opened
    /// for a request (whose id only exists at dispatch time, not on any
    /// thread's stack).
    pub fn adopted(span_id: u64) -> TraceCtx {
        TraceCtx {
            parent: Some(span_id),
            live: true,
        }
    }

    /// The captured span id, if the context is live and has one.
    pub fn span_id(&self) -> Option<u64> {
        if self.live {
            self.parent
        } else {
            None
        }
    }
}

/// Guard returned by [`Telemetry::in_ctx`]; restores the thread's previous
/// adopted parent on drop. `!Send` — it manages this thread's state.
#[derive(Debug)]
pub struct CtxGuard {
    live: bool,
    prev: Option<u64>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if self.live {
            span::set_adopted_parent(self.prev);
        }
    }
}

impl Telemetry {
    /// Captures the current span as a context that can be handed to worker
    /// threads ([`TraceCtx`] is `Send`). Inert when disabled.
    pub fn trace_ctx(&self) -> TraceCtx {
        if !self.is_enabled() {
            return TraceCtx::default();
        }
        TraceCtx {
            parent: span::current_parent(),
            live: true,
        }
    }

    /// Adopts `ctx` on this thread: until the guard drops, spans opened
    /// while no local span is live are parented to the context's span.
    pub fn in_ctx(&self, ctx: &TraceCtx) -> CtxGuard {
        if !ctx.live || !self.is_enabled() {
            return CtxGuard {
                live: false,
                prev: None,
                _not_send: std::marker::PhantomData,
            };
        }
        CtxGuard {
            live: true,
            prev: span::swap_adopted_parent(ctx.parent),
            _not_send: std::marker::PhantomData,
        }
    }

    /// A consistent copy of the flight recorder: every retained span and
    /// event, plus drop counts. Empty when disabled.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.inner
            .as_deref()
            .map(|inner| inner.trace.snapshot())
            .unwrap_or_default()
    }

    /// Nanoseconds since this handle's trace epoch (0 when disabled) — the
    /// clock every [`SpanRecord`] timestamp is measured on. Exposed so
    /// cross-process protocols can exchange clock readings and estimate the
    /// offset between two handles' epochs.
    pub fn trace_now_ns(&self) -> u64 {
        self.inner
            .as_deref()
            .map(|inner| inner.trace.now_ns())
            .unwrap_or(0)
    }
}

/// Everything the flight recorder retained: spans sorted by
/// (thread, start), events sorted by time, and drop counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// Finished spans, sorted by (thread, start_ns, id).
    pub spans: Vec<SpanRecord>,
    /// Structured log events, sorted by (ts_ns, thread).
    pub events: Vec<EventRecord>,
    /// Spans lost to buffer exhaustion.
    pub dropped_spans: u64,
    /// Events lost to buffer exhaustion.
    pub dropped_events: u64,
}

/// Aggregated timing of one span name across the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SelfTime {
    /// Spans with this name.
    pub count: u64,
    /// Total wall time (ns) spent inside spans of this name.
    pub total_ns: u64,
    /// Total time (ns) minus time attributed to same-thread child spans —
    /// the work this name did itself rather than delegated.
    pub self_ns: u64,
}

/// Attribute naming the coordinator span id a remote span should parent
/// under once merged (set by the shard server from the wire trace context,
/// consumed by [`TraceSnapshot::merge_remote`]). The value is the decimal
/// span id.
pub const REMOTE_PARENT_ATTR: &str = "remote_parent";

/// Id stride separating each merged remote process's span ids from local
/// ones (and from each other). Local handles allocate ids from 0, so a
/// collision would need a single process to record 2^40 spans.
const REMOTE_ID_STRIDE: u64 = 1 << 40;

impl TraceSnapshot {
    /// Stitches spans drained from remote shard `shard` into this snapshot
    /// as process lane `shard + 1 + `[`LOCAL_PID`].
    ///
    /// Three rewrites make the merged tree connected and time-aligned:
    ///
    /// * **ids** shift by a per-shard stride so they cannot collide with
    ///   local ids (intra-shard parent links shift with them);
    /// * **cross-process parents**: a remote span carrying
    ///   [`REMOTE_PARENT_ATTR`] re-parents under that *local* span id — the
    ///   coordinator rpc span that issued the request — turning two
    ///   process-local trees into one;
    /// * **timestamps** shift by `clock_offset_ns`, the estimate of
    ///   (remote epoch clock − local epoch clock), so remote spans land on
    ///   the local timeline. The estimate is the caller's (midpoint of the
    ///   drain's send/receive times); record it as a span attribute on the
    ///   collecting span so skew stays visible rather than hidden.
    ///
    /// Returns the number of spans merged. Remote drop counts accumulate
    /// into `dropped_spans` so `validate_tree` stays truncation-aware.
    pub fn merge_remote(
        &mut self,
        shard: usize,
        spans: Vec<SpanRecord>,
        clock_offset_ns: i64,
        remote_dropped: u64,
    ) -> usize {
        let base = (shard as u64 + 1).saturating_mul(REMOTE_ID_STRIDE);
        let merged = spans.len();
        for mut s in spans {
            let remote_parent = s
                .attrs
                .iter()
                .find(|(k, _)| k == REMOTE_PARENT_ATTR)
                .and_then(|(_, v)| v.parse::<u64>().ok());
            s.parent = match remote_parent {
                Some(local_id) => Some(local_id),
                None => s.parent.map(|p| base + p),
            };
            s.id += base;
            s.pid = shard as u64 + 1 + LOCAL_PID;
            s.start_ns =
                (s.start_ns as i128 - clock_offset_ns as i128).clamp(0, u64::MAX as i128) as u64;
            self.spans.push(s);
        }
        self.dropped_spans += remote_dropped;
        self.spans.sort_by(|a, b| {
            (a.pid, a.thread, a.start_ns, a.id).cmp(&(b.pid, b.thread, b.start_ns, b.id))
        });
        merged
    }

    /// Self-time vs child-time attribution, aggregated by span name.
    ///
    /// A span's self time is its duration minus the durations of its
    /// *same-thread* children (children handed off to worker threads run in
    /// parallel with their parent, so they don't consume the parent's
    /// time), clamped at zero. On any one thread the self times telescope:
    /// they sum exactly to the durations of that thread's root spans.
    pub fn self_times(&self) -> BTreeMap<String, SelfTime> {
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        let thread_of: BTreeMap<u64, u64> = self.spans.iter().map(|s| (s.id, s.thread)).collect();
        for s in &self.spans {
            if let Some(parent) = s.parent {
                if thread_of.get(&parent) == Some(&s.thread) {
                    *child_ns.entry(parent).or_default() += s.dur_ns;
                }
            }
        }
        let mut out: BTreeMap<String, SelfTime> = BTreeMap::new();
        for s in &self.spans {
            let spent_in_children = child_ns.get(&s.id).copied().unwrap_or(0);
            let entry = out.entry(s.name.clone()).or_default();
            entry.count += 1;
            entry.total_ns += s.dur_ns;
            entry.self_ns += s.dur_ns.saturating_sub(spent_in_children);
        }
        out
    }

    /// Self time (ns) of one span by id (same-thread children subtracted).
    pub fn span_self_ns(&self, id: u64) -> Option<u64> {
        let span = self.spans.iter().find(|s| s.id == id)?;
        let spent: u64 = self
            .spans
            .iter()
            .filter(|c| c.parent == Some(id) && c.thread == span.thread)
            .map(|c| c.dur_ns)
            .sum();
        Some(span.dur_ns.saturating_sub(spent))
    }

    /// Checks the span tree is well-formed: every non-root parent id refers
    /// to a retained span, and no span is its own ancestor. Returns the
    /// root count. (A truncated buffer can legitimately orphan spans — the
    /// error message distinguishes that case.)
    pub fn validate_tree(&self) -> Result<usize, String> {
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut roots = 0;
        for s in &self.spans {
            match s.parent {
                None => roots += 1,
                Some(p) => {
                    if !ids.contains(&p) {
                        return Err(if self.dropped_spans > 0 {
                            format!(
                                "span {} `{}` orphaned (parent {p} lost to {} dropped spans)",
                                s.id, s.name, self.dropped_spans
                            )
                        } else {
                            format!("span {} `{}` has unknown parent {p}", s.id, s.name)
                        });
                    }
                    if p == s.id {
                        return Err(format!("span {} `{}` is its own parent", s.id, s.name));
                    }
                }
            }
        }
        Ok(roots)
    }

    /// Exports the trace in Chrome trace-event JSON (the object form with a
    /// `traceEvents` array) — loadable in `chrome://tracing` and Perfetto.
    ///
    /// Spans become complete (`"ph": "X"`) events with microsecond
    /// timestamps, sorted by (pid, tid, ts) so per-thread timestamps are
    /// monotonically non-decreasing; log events become instant (`"ph": "i"`)
    /// events. Each span's `pid` is its process lane — [`LOCAL_PID`] for
    /// this process, one lane per merged shard — and metadata records name
    /// every process and thread lane, so a merged multi-process run renders
    /// as one lane group per shard in Perfetto.
    pub fn to_chrome_trace(&self) -> serde_json::Value {
        let mut events: Vec<serde_json::Value> = Vec::new();
        let mut pids: Vec<u64> = self.spans.iter().map(|s| s.pid).collect();
        if !self.events.is_empty() {
            pids.push(LOCAL_PID); // events are always local
        }
        pids.sort_unstable();
        pids.dedup();
        for pid in &pids {
            let name = if *pid == LOCAL_PID {
                "coordinator".to_string()
            } else {
                format!("shard-{}", pid - LOCAL_PID - 1)
            };
            events.push(serde_json::json!({
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }));
        }
        let mut lanes: Vec<(u64, u64)> = self.spans.iter().map(|s| (s.pid, s.thread)).collect();
        lanes.extend(self.events.iter().map(|e| (LOCAL_PID, e.thread)));
        lanes.sort_unstable();
        lanes.dedup();
        for (pid, lane) in &lanes {
            events.push(serde_json::json!({
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": lane,
                "args": {"name": format!("lane-{lane}")},
            }));
        }
        // `spans` is already sorted by (thread, start_ns).
        for s in &self.spans {
            let mut args = serde_json::Map::new();
            args.insert("id".into(), serde_json::json!(s.id));
            if let Some(p) = s.parent {
                args.insert("parent".into(), serde_json::json!(p));
            }
            if let Some(self_ns) = self.span_self_ns(s.id) {
                args.insert("self_us".into(), serde_json::json!(self_ns as f64 / 1e3));
            }
            for (k, v) in &s.attrs {
                args.insert(k.clone(), serde_json::json!(v));
            }
            events.push(serde_json::json!({
                "ph": "X",
                "name": s.name,
                "cat": "span",
                "pid": s.pid,
                "tid": s.thread,
                "ts": s.start_ns as f64 / 1e3,
                "dur": s.dur_ns as f64 / 1e3,
                "args": serde_json::Value::Object(args),
            }));
        }
        for e in &self.events {
            let mut args = serde_json::Map::new();
            args.insert("level".into(), serde_json::json!(e.level.as_str()));
            for (k, v) in &e.fields {
                args.insert(k.clone(), serde_json::json!(v));
            }
            events.push(serde_json::json!({
                "ph": "i",
                "name": e.message,
                "cat": "event",
                "s": "t",
                "pid": LOCAL_PID,
                "tid": e.thread,
                "ts": e.ts_ns as f64 / 1e3,
                "args": serde_json::Value::Object(args),
            }));
        }
        serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "dropped_spans": self.dropped_spans,
                "dropped_events": self.dropped_events,
            },
        })
    }

    /// Exports the structured event log as JSON Lines (one serialized
    /// [`EventRecord`] per line), ready for `grep`/`jq`.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("event serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    #[test]
    fn slot_buffer_accepts_up_to_capacity_then_counts_drops() {
        let buffer: SlotBuffer<u32> = SlotBuffer::new(3);
        assert!(buffer.push(1));
        assert!(buffer.push(2));
        assert!(buffer.push(3));
        assert!(!buffer.push(4));
        assert!(!buffer.push(5));
        assert_eq!(buffer.snapshot(), vec![1, 2, 3]);
        assert_eq!(buffer.dropped(), 2);
    }

    #[test]
    fn concurrent_pushes_never_lose_or_duplicate() {
        let buffer: std::sync::Arc<SlotBuffer<u64>> = std::sync::Arc::new(SlotBuffer::new(4096));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let buffer = std::sync::Arc::clone(&buffer);
                scope.spawn(move || {
                    for i in 0..512u64 {
                        buffer.push(t * 512 + i);
                    }
                });
            }
        });
        let mut got = buffer.snapshot();
        got.sort_unstable();
        let want: Vec<u64> = (0..4096).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn spans_nest_into_a_tree_with_ids() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let trace = t.trace_snapshot();
        assert_eq!(trace.spans.len(), 2);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(trace.validate_tree().unwrap(), 1);
    }

    #[test]
    fn ctx_handoff_parents_worker_spans() {
        let t = Telemetry::enabled();
        {
            let _stage = t.span("stage");
            let ctx = t.trace_ctx();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let t = t.clone();
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _adopt = t.in_ctx(&ctx);
                        let _span = t.span("worker-item");
                    });
                }
            });
        }
        let trace = t.trace_snapshot();
        let stage = trace.spans.iter().find(|s| s.name == "stage").unwrap();
        let items: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "worker-item")
            .collect();
        assert_eq!(items.len(), 2);
        for item in items {
            assert_eq!(item.parent, Some(stage.id), "worker span not adopted");
            assert_ne!(item.thread, stage.thread);
        }
        assert_eq!(trace.validate_tree().unwrap(), 1);
    }

    #[test]
    fn self_time_telescopes_on_one_thread() {
        let t = Telemetry::enabled();
        {
            let _root = t.span("root");
            {
                let _a = t.span("a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _b = t.span("b");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let trace = t.trace_snapshot();
        let times = trace.self_times();
        let root = trace.spans.iter().find(|s| s.name == "root").unwrap();
        let summed: u64 = times.values().map(|v| v.self_ns).sum();
        // Same-thread children telescope exactly (no clamping possible:
        // child intervals are disjoint sub-intervals of the parent).
        assert_eq!(summed, root.dur_ns);
        assert!(times["a"].self_ns >= 2_000_000);
        assert_eq!(times["root"].count, 1);
        assert!(times["root"].self_ns < root.dur_ns);
    }

    #[test]
    fn disabled_handle_records_no_trace() {
        let t = Telemetry::disabled();
        {
            let _span = t.span("ghost");
            let ctx = t.trace_ctx();
            let _adopt = t.in_ctx(&ctx);
            t.event(Level::Warn, "nobody home");
        }
        let trace = t.trace_snapshot();
        assert!(trace.spans.is_empty());
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped_spans, 0);
    }

    #[test]
    fn chrome_trace_round_trips_with_monotonic_ts_per_thread() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("outer");
            for _ in 0..3 {
                let _inner = t.span("inner");
            }
            t.event(Level::Info, "midpoint");
        }
        let json = t.trace_snapshot().to_chrome_trace();
        let text = serde_json::to_string(&json).expect("serializes");
        let back: serde_json::Value = serde_json::from_str(&text).expect("parses");
        let events = back["traceEvents"].as_array().expect("array");
        assert!(!events.is_empty());
        let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
        let mut complete = 0;
        for e in events {
            match e["ph"].as_str().unwrap() {
                "X" => {
                    complete += 1;
                    let tid = e["tid"].as_u64().expect("tid");
                    let ts = e["ts"].as_f64().expect("ts");
                    if let Some(prev) = last_ts.insert(tid, ts) {
                        assert!(ts >= prev, "ts regressed on lane {tid}: {prev} -> {ts}");
                    }
                    assert!(e["dur"].as_f64().expect("dur") >= 0.0);
                }
                "i" => assert_eq!(e["args"]["level"], "info"),
                "M" => assert!(
                    e["name"] == "thread_name" || e["name"] == "process_name",
                    "unexpected metadata record {}",
                    e["name"]
                ),
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(complete, 4);
    }

    fn remote_span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_ns: u64,
        attrs: Vec<(String, String)>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            pid: LOCAL_PID,
            thread: 0,
            start_ns,
            dur_ns: 10,
            attrs,
        }
    }

    #[test]
    fn merge_remote_stitches_one_connected_tree_across_processes() {
        let t = Telemetry::enabled();
        let rpc_id;
        {
            let _search = t.span("index.search");
            let rpc = t.detached_span("serve.rpc", &[]);
            rpc_id = rpc.id().unwrap();
            rpc.finish();
        }
        let mut merged = t.trace_snapshot();
        // The shard recorded a request span pointing back at the rpc span,
        // with its own child underneath.
        let shard_spans = vec![
            remote_span(
                5,
                None,
                "server.request",
                100,
                vec![(REMOTE_PARENT_ATTR.to_string(), rpc_id.to_string())],
            ),
            remote_span(6, Some(5), "server.queue_wait", 100, Vec::new()),
        ];
        assert_eq!(merged.merge_remote(0, shard_spans, 0, 2), 2);
        assert_eq!(merged.spans.len(), 4);
        assert_eq!(merged.dropped_spans, 2);
        let request = merged
            .spans
            .iter()
            .find(|s| s.name == "server.request")
            .unwrap();
        let wait = merged
            .spans
            .iter()
            .find(|s| s.name == "server.queue_wait")
            .unwrap();
        // Cross-process link: the request re-parents under the local rpc
        // span; the intra-shard link shifts with the id stride.
        assert_eq!(request.parent, Some(rpc_id));
        assert_eq!(wait.parent, Some(request.id));
        assert_eq!(request.pid, LOCAL_PID + 1);
        // One connected tree, rooted at index.search.
        assert_eq!(merged.validate_tree().unwrap(), 1);
    }

    #[test]
    fn merge_remote_shifts_timestamps_by_the_clock_offset() {
        let mut snap = TraceSnapshot::default();
        snap.merge_remote(
            1,
            vec![remote_span(0, None, "late", 1_000, Vec::new())],
            400,
            0,
        );
        assert_eq!(snap.spans[0].start_ns, 600);
        assert_eq!(snap.spans[0].pid, LOCAL_PID + 2);
        // A negative offset (remote clock behind) shifts forward; clamps at 0.
        let mut snap = TraceSnapshot::default();
        snap.merge_remote(
            0,
            vec![remote_span(0, None, "early", 100, Vec::new())],
            -50,
            0,
        );
        assert_eq!(snap.spans[0].start_ns, 150);
        let mut snap = TraceSnapshot::default();
        snap.merge_remote(
            0,
            vec![remote_span(0, None, "clamped", 100, Vec::new())],
            500,
            0,
        );
        assert_eq!(snap.spans[0].start_ns, 0);
    }

    #[test]
    fn merged_chrome_trace_has_one_process_lane_per_shard() {
        let t = Telemetry::enabled();
        {
            let _root = t.span("root");
        }
        let mut merged = t.trace_snapshot();
        for shard in 0..2usize {
            merged.merge_remote(
                shard,
                vec![remote_span(0, None, "server.request", 0, Vec::new())],
                0,
                0,
            );
        }
        let json = merged.to_chrome_trace();
        let events = json["traceEvents"].as_array().unwrap();
        let mut process_names: Vec<(u64, String)> = events
            .iter()
            .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
            .map(|e| {
                (
                    e["pid"].as_u64().unwrap(),
                    e["args"]["name"].as_str().unwrap().to_string(),
                )
            })
            .collect();
        process_names.sort();
        assert_eq!(
            process_names,
            vec![
                (LOCAL_PID, "coordinator".to_string()),
                (LOCAL_PID + 1, "shard-0".to_string()),
                (LOCAL_PID + 2, "shard-1".to_string()),
            ]
        );
        let span_pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e["ph"] == "X")
            .map(|e| e["pid"].as_u64().unwrap())
            .collect();
        assert_eq!(span_pids.len(), 3);
    }

    #[test]
    fn adopted_ctx_parents_spans_under_an_explicit_id() {
        let t = Telemetry::enabled();
        let req = t.detached_span("server.request", &[]);
        let req_id = req.id().unwrap();
        {
            let _adopt = t.in_ctx(&TraceCtx::adopted(req_id));
            let _work = t.span("work");
        }
        req.finish();
        let trace = t.trace_snapshot();
        let work = trace.spans.iter().find(|s| s.name == "work").unwrap();
        assert_eq!(work.parent, Some(req_id));
        assert_eq!(TraceCtx::adopted(7).span_id(), Some(7));
        assert_eq!(TraceCtx::default().span_id(), None);
    }

    #[test]
    fn span_buffer_overflow_drops_quietly_and_reports() {
        let t = Telemetry::with_trace_capacity(4, 4);
        for _ in 0..10 {
            let _span = t.span("s");
        }
        let trace = t.trace_snapshot();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.dropped_spans, 6);
    }
}
