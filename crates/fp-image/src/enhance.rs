//! Contextual Gabor enhancement (Hong, Wan & Jain) plus block ridge
//! frequency estimation.

use fp_core::geometry::Orientation;

use crate::image::GrayImage;
use crate::orientation::EstimatedField;
use crate::segment::Mask;

/// Estimates the dominant ridge period (pixels) of a block by projecting it
/// onto the normal of the local orientation and counting sign changes of
/// the mean-detrended signature (the classic "x-signature" method).
///
/// Returns `None` when the block has too little structure to estimate.
pub fn block_ridge_period(
    img: &GrayImage,
    x0: usize,
    y0: usize,
    block: usize,
    orientation: Orientation,
) -> Option<f64> {
    let x1 = (x0 + block).min(img.width());
    let y1 = (y0 + block).min(img.height());
    if x1 <= x0 || y1 <= y0 {
        return None;
    }
    let normal = orientation.radians() + std::f64::consts::FRAC_PI_2;
    let (nc, ns) = (normal.cos(), normal.sin());
    // Project pixels onto the normal axis, accumulate into integer bins.
    let diag = ((block * block * 2) as f64).sqrt() as usize + 2;
    let mut sums = vec![0.0f64; diag];
    let mut counts = vec![0u32; diag];
    let centre_x = (x0 + x1) as f64 / 2.0;
    let centre_y = (y0 + y1) as f64 / 2.0;
    for y in y0..y1 {
        for x in x0..x1 {
            let u = (x as f64 - centre_x) * nc + (y as f64 - centre_y) * ns;
            let bin = (u + diag as f64 / 2.0).round();
            if bin >= 0.0 && (bin as usize) < diag {
                sums[bin as usize] += img.at(x, y) as f64;
                counts[bin as usize] += 1;
            }
        }
    }
    let signature: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .filter(|(_, &c)| c > 0)
        .map(|(&s, &c)| s / c as f64)
        .collect();
    if signature.len() < 8 {
        return None;
    }
    let mean = signature.iter().sum::<f64>() / signature.len() as f64;
    let mut crossings = 0usize;
    let mut prev_sign = (signature[0] - mean) >= 0.0;
    for &v in &signature[1..] {
        let sign = (v - mean) >= 0.0;
        if sign != prev_sign {
            crossings += 1;
            prev_sign = sign;
        }
    }
    if crossings < 2 {
        return None;
    }
    // Two crossings per ridge period.
    let period = 2.0 * signature.len() as f64 / crossings as f64;
    if (3.0..=25.0).contains(&period) {
        Some(period)
    } else {
        None
    }
}

/// Gabor-enhances `img` using the estimated orientation `field`, a
/// foreground `mask`, and a fallback ridge period (pixels) for blocks where
/// frequency estimation fails.
pub fn gabor_enhance(
    img: &GrayImage,
    field: &EstimatedField,
    mask: &Mask,
    fallback_period: f64,
) -> GrayImage {
    let (w, h) = (img.width(), img.height());
    let block = field.block();
    let mut out = vec![1.0f32; w * h];

    // Pre-compute per-block period.
    let cols = w.div_ceil(block);
    let rows = h.div_ceil(block);
    let mut periods = vec![fallback_period; cols * rows];
    for by in 0..rows {
        for bx in 0..cols {
            let orientation = field.orientation_at_pixel(bx * block, by * block);
            if let Some(p) = block_ridge_period(img, bx * block, by * block, block, orientation) {
                periods[by * cols + bx] = p;
            }
        }
    }

    let radius = (fallback_period * 0.8).ceil() as isize;
    for y in 0..h {
        for x in 0..w {
            if !mask.is_foreground(x, y) {
                continue;
            }
            let orientation = field.orientation_at_pixel(x, y);
            let period = periods[(y / block).min(rows - 1) * cols + (x / block).min(cols - 1)];
            let (c, s) = (
                orientation.radians().cos() as f32,
                orientation.radians().sin() as f32,
            );
            let freq = std::f32::consts::TAU / period as f32;
            let sigma_u = radius as f32 / 1.8;
            let sigma_v = radius as f32 / 2.6;
            let mut acc = 0.0f32;
            let mut norm = 0.0f32;
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    let u = dx as f32 * c + dy as f32 * s;
                    let v = -(dx as f32) * s + dy as f32 * c;
                    let wgt = (-(u * u) / (2.0 * sigma_u * sigma_u)
                        - (v * v) / (2.0 * sigma_v * sigma_v))
                        .exp()
                        * (freq * v).cos();
                    acc += wgt * img.at_clamped(x as isize + dx, y as isize + dy);
                    norm += wgt.abs();
                }
            }
            if norm > 1e-6 {
                out[y * w + x] = 0.5 + 0.5 * (4.0 * acc / norm).tanh();
            }
        }
    }
    GrayImage::from_data(w, h, out).expect("dimensions preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::estimate_orientation;
    use crate::segment::segment;

    fn grating(period: f32, w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::filled(w, h, 0.0).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    0.5 + 0.5 * (y as f32 * std::f32::consts::TAU / period).cos(),
                );
            }
        }
        img
    }

    #[test]
    fn period_estimation_recovers_grating_period() {
        let img = grating(9.0, 64, 64);
        let field = estimate_orientation(&img, 16);
        let o = field.orientation_at_pixel(32, 32);
        let p = block_ridge_period(&img, 16, 16, 32, o).expect("estimable");
        assert!((p - 9.0).abs() < 2.0, "estimated period {p}");
    }

    #[test]
    fn period_estimation_fails_on_flat_blocks() {
        let img = GrayImage::filled(64, 64, 0.4);
        let img = img.unwrap();
        assert!(block_ridge_period(&img, 0, 0, 32, Orientation::HORIZONTAL).is_none());
    }

    #[test]
    fn enhancement_keeps_grating_structure() {
        let img = grating(9.0, 96, 96);
        let field = estimate_orientation(&img, 16);
        let mask = segment(&img, 16, 0.1);
        let enhanced = gabor_enhance(&img, &field, &mask, 9.0);
        // The enhanced image must still oscillate with roughly the same
        // period along y in the interior.
        let x = 48;
        let mut transitions = 0;
        let mut prev = enhanced.at(x, 20) < 0.5;
        for y in 21..76 {
            let cur = enhanced.at(x, y) < 0.5;
            if cur != prev {
                transitions += 1;
                prev = cur;
            }
        }
        let period = 2.0 * 55.0 / transitions.max(1) as f64;
        assert!(
            (period - 9.0).abs() < 3.0,
            "period after enhancement {period}"
        );
    }

    #[test]
    fn background_stays_white() {
        let img = grating(9.0, 64, 64);
        let field = estimate_orientation(&img, 16);
        // All-background mask: nothing is enhanced.
        let flat = GrayImage::filled(64, 64, 0.5).unwrap();
        let mask = segment(&flat, 16, 0.5);
        let enhanced = gabor_enhance(&img, &field, &mask, 9.0);
        assert!(enhanced.data().iter().all(|&v| v == 1.0));
    }
}
