//! The acquisition engine: master print → impression.
//!
//! The capture chain, in order:
//!
//! 1. sample the presentation [`CaptureCondition`] from the subject's skin;
//! 2. determine the **contact region** (pressure-dependent pad fraction for
//!    flat placement; nail-to-nail for rolled ink);
//! 3. sample the **placement** of the finger on the platen (translation +
//!    rotation; tight for operator-guided ink rolling, loose for walk-up
//!    live-scan use);
//! 4. add per-capture **skin elasticity warp** (low-frequency random
//!    distortion scaled by the subject's elasticity and the pressure);
//! 5. apply the device's fixed **distortion signature**;
//! 6. apply sensor **noise**: position jitter, direction jitter,
//!    condition-dependent dropout, spurious minutiae;
//! 7. **crop** to the device capture window and **quantize** to the pixel
//!    grid;
//! 8. derive the [`ImpressionFeatures`] consumed by the NFIQ-like quality
//!    assessor.

use rand::Rng;

use fp_core::dist;
use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::ids::{DeviceId, Finger, SessionId, SubjectId};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::{Template, MAX_MINUTIAE};
use fp_synth::master::MasterPrint;
use fp_synth::population::SkinProfile;
use serde::{Deserialize, Serialize};

use crate::condition::CaptureCondition;
use crate::device::Device;

/// Quality-relevant features of an impression, consumed by `fp-quality`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpressionFeatures {
    /// Number of minutiae that survived capture.
    pub minutia_count: usize,
    /// Mean extraction reliability of the captured minutiae.
    pub mean_reliability: f64,
    /// Fraction of the contact region that landed inside the capture window.
    pub captured_area_fraction: f64,
    /// Ridge clarity implied by the presentation condition and device.
    pub clarity: f64,
    /// Presentation extremity (how far from ideal moisture/pressure).
    pub condition_extremity: f64,
    /// Device-specific quality bias (NFIQ levels), carried to the assessor.
    pub quality_bias: f64,
}

/// One captured fingerprint impression: the extracted template plus all
/// capture metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Impression {
    subject: SubjectId,
    finger: Finger,
    device: DeviceId,
    session: SessionId,
    template: Template,
    condition: CaptureCondition,
    features: ImpressionFeatures,
}

impl Impression {
    /// The subject the finger belongs to.
    pub fn subject(&self) -> SubjectId {
        self.subject
    }

    /// Which finger was captured.
    pub fn finger(&self) -> Finger {
        self.finger
    }

    /// The capture device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The capture session.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The extracted minutiae template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The presentation condition during capture.
    pub fn condition(&self) -> CaptureCondition {
        self.condition
    }

    /// Quality-relevant features.
    pub fn features(&self) -> ImpressionFeatures {
        self.features
    }

    /// A re-digitization of the *same physical impression* — models taking a
    /// second flat-bed scan of an ink ten-print card: the geometry is the
    /// card's, only scanner sampling and extraction instability differ
    /// (small positional jitter, re-quantization, a few percent of minutiae
    /// gained/lost by the extractor).
    pub fn rescanned(&self, session: SessionId, seed: &SeedTree) -> Impression {
        use rand::Rng;
        let mut rng = seed.rng();
        // Use the template's own capture dpi rather than the device
        // registry: impressions may come from custom Device values whose id
        // merely reuses a registry slot.
        let dpi = self.template.resolution_dpi();
        let pitch = 25.4 / dpi;
        let window = self.template.capture_window();
        let mut minutiae: Vec<Minutia> = Vec::with_capacity(self.template.len());
        for m in self.template.minutiae() {
            if rng.gen::<f64>() < 0.02 {
                continue; // extraction instability between scans
            }
            let jittered = Point::new(
                m.pos.x + dist::normal(&mut rng, 0.0, 0.05),
                m.pos.y + dist::normal(&mut rng, 0.0, 0.05),
            );
            let quantized = Point::new(
                (jittered.x / pitch).round() * pitch,
                (jittered.y / pitch).round() * pitch,
            );
            let direction = m.direction.rotated(dist::von_mises(&mut rng, 0.0, 400.0));
            if window.contains(&quantized) {
                minutiae.push(Minutia::new(quantized, direction, m.kind, m.reliability));
            }
        }
        let mean_reliability = if minutiae.is_empty() {
            0.0
        } else {
            minutiae.iter().map(|m| m.reliability).sum::<f64>() / minutiae.len() as f64
        };
        let features = ImpressionFeatures {
            minutia_count: minutiae.len(),
            mean_reliability,
            ..self.features
        };
        let template = Template::from_minutiae(minutiae, dpi, window)
            .expect("rescan preserves template invariants");
        Impression {
            session,
            template,
            features,
            ..self.clone()
        }
    }
}

/// Per-capture random elastic skin warp: two low-frequency sinusoidal
/// components whose amplitude grows with poor elasticity and hard pressure.
#[derive(Debug, Clone, Copy)]
struct SkinWarp {
    ax: f64,
    ay: f64,
    fx: f64,
    fy: f64,
    px: f64,
    py: f64,
}

impl SkinWarp {
    fn sample<R: Rng + ?Sized>(
        skin: &SkinProfile,
        condition: &CaptureCondition,
        rng: &mut R,
    ) -> Self {
        let amplitude =
            (1.0 - skin.elasticity) * 0.10 + (2.0 * (condition.pressure - 0.5)).abs() * 0.05;
        SkinWarp {
            ax: amplitude * (0.6 + 0.4 * rng.gen::<f64>()),
            ay: amplitude * (0.6 + 0.4 * rng.gen::<f64>()),
            fx: 0.20 + 0.20 * rng.gen::<f64>(),
            fy: 0.20 + 0.20 * rng.gen::<f64>(),
            px: rng.gen::<f64>() * std::f64::consts::TAU,
            py: rng.gen::<f64>() * std::f64::consts::TAU,
        }
    }

    fn displace(&self, p: Point) -> Vector {
        Vector::new(
            self.ax * (self.fx * p.y + self.px).sin(),
            self.ay * (self.fy * p.x + self.py).sin(),
        )
    }
}

/// Per-capture swipe-reconstruction artifacts: the finger is dragged over a
/// line sensor, and speed variation between reconstruction bands leaves
/// band-wise lateral offsets plus a cumulative vertical stretch error.
#[derive(Debug, Clone)]
struct SwipeStitch {
    /// Height of one reconstruction band (mm).
    band_mm: f64,
    /// Lateral offset per band (mm).
    offsets: Vec<f64>,
    /// Cumulative vertical scale error per band (1.0 = true speed).
    stretch: Vec<f64>,
}

impl SwipeStitch {
    const BANDS: usize = 40;

    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut offsets = Vec::with_capacity(Self::BANDS);
        let mut stretch = Vec::with_capacity(Self::BANDS);
        let mut drift = 0.0;
        for _ in 0..Self::BANDS {
            // Lateral offsets random-walk slightly (the finger wanders
            // sideways during the swipe).
            drift += dist::normal(rng, 0.0, 0.05);
            drift *= 0.9;
            offsets.push(drift);
            stretch.push(1.0 + dist::normal(rng, 0.0, 0.035));
        }
        SwipeStitch {
            band_mm: 1.4,
            offsets,
            stretch,
        }
    }

    /// Applies the stitch artifacts to a platen-coordinate point.
    fn displace(&self, q: Point) -> Point {
        let band_f = q.y / self.band_mm + Self::BANDS as f64 / 2.0;
        let band = (band_f.floor().max(0.0) as usize).min(Self::BANDS - 1);
        Point::new(q.x + self.offsets[band], q.y * self.stretch[band])
    }
}

/// The acquisition engine. Stateless; all randomness flows from the seed
/// tree so captures are exactly reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Acquisition;

impl Acquisition {
    /// Captures `master` on `device`.
    ///
    /// `habituation` in `[0, 1]` models presentation experience (see
    /// [`CaptureCondition::sample`]); pass `0.0` for first-session captures.
    /// `seed` must be unique per `(subject, finger, device, session)`.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        &self,
        master: &MasterPrint,
        skin: &SkinProfile,
        device: &Device,
        subject: SubjectId,
        finger: Finger,
        session: SessionId,
        habituation: f64,
        seed: &SeedTree,
    ) -> Impression {
        self.capture_with_seeds(
            master,
            skin,
            device,
            subject,
            finger,
            session,
            habituation,
            &seed.child(&[0]),
            &seed.child(&[1]),
        )
    }

    /// Captures with separate seed streams for the *presentation* (skin
    /// condition, placement, elastic warp) and the *sensing noise* (jitter,
    /// dropout, spurious minutiae).
    ///
    /// The split models ink ten-print cards faithfully: the finger is inked
    /// and rolled **once**, and both study samples are read off the same
    /// physical card — so the protocol reuses the presentation seed across
    /// the two D4 sessions while the scan/extraction noise stays
    /// independent.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_with_seeds(
        &self,
        master: &MasterPrint,
        skin: &SkinProfile,
        device: &Device,
        subject: SubjectId,
        finger: Finger,
        session: SessionId,
        habituation: f64,
        setup_seed: &SeedTree,
        noise_seed: &SeedTree,
    ) -> Impression {
        self.capture_with_seeds_metered(
            master,
            skin,
            device,
            subject,
            finger,
            session,
            habituation,
            setup_seed,
            noise_seed,
            &crate::metrics::CaptureMetrics::default(),
        )
    }

    /// [`Acquisition::capture_with_seeds`] with telemetry: tallies the loss
    /// channels of this capture (dropout, vignette, window clipping) and
    /// the spurious detections into `metrics`.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_with_seeds_metered(
        &self,
        master: &MasterPrint,
        skin: &SkinProfile,
        device: &Device,
        subject: SubjectId,
        finger: Finger,
        session: SessionId,
        habituation: f64,
        setup_seed: &SeedTree,
        noise_seed: &SeedTree,
        metrics: &crate::metrics::CaptureMetrics,
    ) -> Impression {
        let mut setup_rng = setup_seed.rng();
        let mut rng = noise_seed.rng();
        let condition = CaptureCondition::sample(skin, habituation, &mut setup_rng);
        let clarity = (condition.clarity() - device.noise.quality_bias * 0.08).clamp(0.05, 1.0);

        // Contact region on the finger pad.
        let contact = if device.is_ink() {
            master.region().scaled(0.95)
        } else {
            master.region().scaled(condition.flat_contact_scale())
        };

        // Placement on the platen: walk-up use is sloppy, operator-guided
        // ink rolling is tight.
        let (trans_sd, rot_sd) = if device.is_ink() {
            (1.2, 0.04)
        } else {
            (4.5, 0.10)
        };
        let placement = RigidMotion::new(
            Direction::from_radians(dist::truncated_normal(
                &mut setup_rng,
                0.0,
                rot_sd,
                -0.3,
                0.3,
            )),
            Vector::new(
                dist::truncated_normal(&mut setup_rng, 0.0, trans_sd, -11.0, 11.0),
                dist::truncated_normal(&mut setup_rng, 0.0, trans_sd, -11.0, 11.0),
            ),
        );
        let skin_warp = SkinWarp::sample(skin, &condition, &mut setup_rng);
        let stitch = if device.is_swipe() {
            Some(SwipeStitch::sample(&mut setup_rng))
        } else {
            None
        };

        let window = device.capture_window();
        let pitch = device.pixel_pitch_mm();
        let jitter_sd = device.noise.position_jitter * (1.0 + 0.4 * (1.0 - clarity));
        let kappa = (device.noise.direction_kappa * clarity.max(0.3)).max(2.0);
        let dropout = (device.noise.base_dropout + (1.0 - clarity) * 0.22).clamp(0.0, 0.95);

        let project = |p: Point, warp: &SkinWarp| -> Point {
            let placed = placement.apply(&p) + warp.displace(p);
            let warped = device.distortion.apply(placed);
            match &stitch {
                Some(s) => s.displace(warped),
                None => warped,
            }
        };

        let mut minutiae: Vec<Minutia> = Vec::new();
        let (mut lost_dropout, mut lost_vignette, mut lost_clipped) = (0u64, 0u64, 0u64);
        for m in master.minutiae() {
            // Contact test in finger coordinates, with the edge band suffering
            // extra dropout (partial ridge contact near the boundary).
            let dxn = (m.pos.x - contact.centre.x) / contact.semi_x;
            let dyn_ = (m.pos.y - contact.centre.y) / contact.semi_y;
            let u = (dxn * dxn + dyn_ * dyn_).sqrt();
            if u > 1.0 {
                continue;
            }
            let edge_penalty = if u > 0.82 {
                0.35 * ((u - 0.82) / 0.18)
            } else {
                0.0
            };
            if rng.gen::<f64>() < dropout + edge_penalty {
                lost_dropout += 1;
                continue;
            }
            let projected = project(m.pos, &skin_warp);
            let jittered = Point::new(
                projected.x + dist::normal(&mut rng, 0.0, jitter_sd),
                projected.y + dist::normal(&mut rng, 0.0, jitter_sd),
            );
            if !window.contains(&jittered) {
                lost_clipped += 1;
                continue;
            }
            // Illumination vignette: sensitivity falls off toward the window
            // edge, eating minutiae in the boundary band. This is the
            // dominant loss channel for the small-window handheld D3.
            let edge_dist =
                (window.max().x - jittered.x.abs()).min(window.max().y - jittered.y.abs());
            let band = device.noise.vignette_band_mm;
            if edge_dist < band && rng.gen::<f64>() < 0.6 * (1.0 - edge_dist / band) {
                lost_vignette += 1;
                continue;
            }
            let quantized = Point::new(
                (jittered.x / pitch).round() * pitch,
                (jittered.y / pitch).round() * pitch,
            );
            let direction = placement
                .apply_direction(m.direction)
                .rotated(dist::von_mises(&mut rng, 0.0, kappa));
            let reliability = m.reliability
                * clarity.sqrt()
                * (1.0 - edge_penalty)
                * (0.85 + 0.15 * rng.gen::<f64>());
            // Extraction occasionally confuses endings with bifurcations
            // (broken ridges under dry skin look like endings, bridged
            // valleys under wet skin look like bifurcations).
            let kind = if rng.gen::<f64>() < 0.06 {
                match m.kind {
                    MinutiaKind::RidgeEnding => MinutiaKind::Bifurcation,
                    MinutiaKind::Bifurcation => MinutiaKind::RidgeEnding,
                }
            } else {
                m.kind
            };
            minutiae.push(Minutia::new(quantized, direction, kind, reliability));
        }

        // Spurious minutiae from dirt, ink blobs, scars, bridged valleys.
        let contact_area = contact.area_mm2();
        let spurious_lambda =
            device.noise.spurious_rate * contact_area * (1.0 + 2.0 * (1.0 - clarity));
        let spurious_count = dist::poisson(&mut rng, spurious_lambda) as usize;
        let mut spurious_added = 0u64;
        for _ in 0..spurious_count {
            let p = contact.sample_point(&mut rng);
            let projected = project(p, &skin_warp);
            if !window.contains(&projected) {
                continue;
            }
            spurious_added += 1;
            let quantized = Point::new(
                (projected.x / pitch).round() * pitch,
                (projected.y / pitch).round() * pitch,
            );
            let kind = if rng.gen::<bool>() {
                MinutiaKind::RidgeEnding
            } else {
                MinutiaKind::Bifurcation
            };
            minutiae.push(Minutia::new(
                quantized,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                kind,
                0.2 + 0.3 * rng.gen::<f64>(),
            ));
        }
        minutiae.truncate(MAX_MINUTIAE);
        metrics.record_losses(lost_dropout, lost_vignette, lost_clipped, spurious_added);

        // Captured-area fraction by Monte Carlo over the contact region.
        let samples = 128;
        let mut effective = 0.0;
        for _ in 0..samples {
            let p = contact.sample_point(&mut rng);
            let q = project(p, &skin_warp);
            if !window.contains(&q) {
                continue;
            }
            let edge_dist = (window.max().x - q.x.abs()).min(window.max().y - q.y.abs());
            let band = device.noise.vignette_band_mm;
            effective += if edge_dist < band {
                1.0 - 0.6 * (1.0 - edge_dist / band)
            } else {
                1.0
            };
        }
        let captured_area_fraction = effective / samples as f64;

        let mean_reliability = if minutiae.is_empty() {
            0.0
        } else {
            minutiae.iter().map(|m| m.reliability).sum::<f64>() / minutiae.len() as f64
        };
        let features = ImpressionFeatures {
            minutia_count: minutiae.len(),
            mean_reliability,
            captured_area_fraction,
            clarity,
            condition_extremity: condition.extremity(),
            quality_bias: device.noise.quality_bias,
        };

        let template = Template::from_minutiae(minutiae, device.resolution_dpi, window)
            .expect("capture respects template invariants");
        Impression {
            subject,
            finger,
            device: device.id,
            session,
            template,
            condition,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DEVICES;
    use fp_core::ids::Digit;
    use fp_synth::population::{Population, PopulationConfig};

    fn fixture() -> (MasterPrint, SkinProfile) {
        let pop = Population::generate(&PopulationConfig::new(77, 2));
        let s = &pop.subjects()[0];
        (s.master_print(Finger::RIGHT_INDEX), s.skin())
    }

    fn capture(device_idx: usize, session: u8, seed: u64) -> Impression {
        let (master, skin) = fixture();
        Acquisition.capture(
            &master,
            &skin,
            &DEVICES[device_idx],
            SubjectId(0),
            Finger::RIGHT_INDEX,
            SessionId(session),
            0.0,
            &SeedTree::new(seed),
        )
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture(0, 0, 42);
        let b = capture(0, 0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_impressions() {
        let a = capture(0, 0, 1);
        let b = capture(0, 0, 2);
        assert_ne!(a.template(), b.template());
    }

    #[test]
    fn captures_have_plausible_minutiae_counts() {
        for d in 0..5usize {
            let imp = capture(d, 0, 7);
            let n = imp.template().len();
            assert!((8..=90).contains(&n), "device {d}: {n} minutiae");
        }
    }

    #[test]
    fn minutiae_are_inside_the_window_and_quantized() {
        let imp = capture(3, 0, 9);
        let dev = &DEVICES[3];
        let pitch = dev.pixel_pitch_mm();
        for m in imp.template().minutiae() {
            assert!(dev.capture_window().contains(&m.pos));
            let rx = (m.pos.x / pitch).round() * pitch;
            assert!((m.pos.x - rx).abs() < 1e-9, "x not on pixel grid");
        }
    }

    #[test]
    fn ink_has_larger_contact_than_flat_on_average() {
        let mut ink_counts = 0usize;
        let mut flat_counts = 0usize;
        for seed in 0..20u64 {
            // D4 has a 40x40 window; compare against the similarly-small D3
            // to isolate the rolled-contact effect from window size.
            ink_counts += capture(4, 0, seed).template().len();
            flat_counts += capture(3, 0, seed).template().len();
        }
        assert!(
            ink_counts > flat_counts,
            "ink {ink_counts} vs flat {flat_counts}"
        );
    }

    #[test]
    fn features_are_in_valid_ranges() {
        for d in 0..5usize {
            for seed in 0..5u64 {
                let f = capture(d, 0, seed).features();
                assert!((0.0..=1.0).contains(&f.mean_reliability));
                assert!((0.0..=1.0).contains(&f.captured_area_fraction));
                assert!((0.0..=1.0).contains(&f.clarity));
                assert!((0.0..=1.0).contains(&f.condition_extremity));
                assert_eq!(f.minutia_count, {
                    let imp = capture(d, 0, seed);
                    imp.template().len()
                });
            }
        }
    }

    #[test]
    fn small_window_device_captures_less_area() {
        let mut d0_area = 0.0;
        let mut d3_area = 0.0;
        for seed in 0..20u64 {
            d0_area += capture(0, 0, seed).features().captured_area_fraction;
            d3_area += capture(3, 0, seed).features().captured_area_fraction;
        }
        assert!(
            d3_area < d0_area,
            "D3 area {d3_area} not smaller than D0 area {d0_area}"
        );
    }

    #[test]
    fn metadata_is_propagated() {
        let (master, skin) = fixture();
        let imp = Acquisition.capture(
            &master,
            &skin,
            &DEVICES[2],
            SubjectId(9),
            Finger::new(fp_core::ids::Hand::Left, Digit::Middle),
            SessionId(1),
            0.5,
            &SeedTree::new(5),
        );
        assert_eq!(imp.subject(), SubjectId(9));
        assert_eq!(imp.device(), fp_core::ids::DeviceId(2));
        assert_eq!(imp.session(), SessionId(1));
        assert_eq!(imp.finger().digit, Digit::Middle);
    }
}
