//! Cross-crate behavioural tests: the acquisition models plus the pair-table
//! matcher must produce the qualitative score structure the paper reports.
//!
//! Run with `--nocapture` to see the score tables used for calibration.

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_core::Matcher;
use fp_match::PairTableMatcher;
use fp_sensor::CaptureProtocol;
use fp_synth::population::{Population, PopulationConfig};

const SUBJECTS: usize = 30;

struct Scores {
    /// [gallery device][probe device] -> genuine scores over subjects.
    genuine: Vec<Vec<Vec<f64>>>,
    /// Impostor scores (same device D0).
    impostor: Vec<f64>,
}

fn collect() -> Scores {
    let pop = Population::generate(&PopulationConfig::new(2024, SUBJECTS));
    let protocol = CaptureProtocol::new();
    let matcher = PairTableMatcher::default();
    // Capture gallery (session 0) and probe (session 1) for each subject and
    // device.
    let captures: Vec<Vec<[fp_sensor::Impression; 2]>> = pop
        .subjects()
        .iter()
        .map(|s| {
            DeviceId::ALL
                .iter()
                .map(|&d| {
                    [
                        protocol.capture(s, Finger::RIGHT_INDEX, d, SessionId(0)),
                        protocol.capture(s, Finger::RIGHT_INDEX, d, SessionId(1)),
                    ]
                })
                .collect()
        })
        .collect();

    let mut genuine = vec![vec![Vec::new(); 5]; 5];
    for subject in &captures {
        for g in 0..5 {
            for p in 0..5 {
                let score = matcher
                    .compare(subject[g][0].template(), subject[p][1].template())
                    .value();
                genuine[g][p].push(score);
            }
        }
    }
    let mut impostor = Vec::new();
    for i in 0..captures.len() {
        for j in 0..captures.len() {
            if i != j {
                impostor.push(
                    matcher
                        .compare(captures[i][0][0].template(), captures[j][0][1].template())
                        .value(),
                );
            }
        }
    }
    Scores { genuine, impostor }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn score_structure_matches_paper_findings() {
    let scores = collect();

    eprintln!("mean genuine score matrix (gallery rows, probe cols):");
    for g in 0..5 {
        let row: Vec<String> = (0..5)
            .map(|p| format!("{:6.1}", mean(&scores.genuine[g][p])))
            .collect();
        eprintln!("  D{g}: {}", row.join(" "));
    }
    let imp_max = scores.impostor.iter().cloned().fold(0.0, f64::max);
    eprintln!(
        "impostor: mean {:.2}, max {:.2}, n {}",
        mean(&scores.impostor),
        imp_max,
        scores.impostor.len()
    );

    // 1. Same-device genuine scores beat cross-device for the big optical
    //    platens: strictly for D0, and within sampling noise for D2 (the
    //    paper's own Table 5 has the {D2,D2} and {D2,D0} cells nearly tied).
    for (g, slack) in [(0usize, 0.0), (2usize, 0.5)] {
        let diag = mean(&scores.genuine[g][g]);
        for p in 0..5 {
            if p != g {
                let cross = mean(&scores.genuine[g][p]);
                assert!(
                    diag > cross - slack,
                    "D{g}: diagonal {diag:.1} not above cross D{p} {cross:.1}"
                );
            }
        }
    }

    // 2. Ink (D4) is the least interoperable probe for optical galleries.
    for g in 0..4 {
        let ink = mean(&scores.genuine[g][4]);
        for p in 0..4 {
            if p != g {
                let cross = mean(&scores.genuine[g][p]);
                assert!(
                    ink < cross + 1.5,
                    "D{g}: ink probe {ink:.1} not among the lowest (cross D{p} {cross:.1})"
                );
            }
        }
    }

    // 3. Genuine scores clear the impostor range: the genuine mean must sit
    //    far above the impostor mean everywhere.
    let imp_mean = mean(&scores.impostor);
    for g in 0..5 {
        for p in 0..5 {
            let gm = mean(&scores.genuine[g][p]);
            assert!(
                gm > imp_mean + 5.0,
                "genuine D{g}->D{p} mean {gm:.1} too close to impostor mean {imp_mean:.1}"
            );
        }
    }

    // 4. Impostor scores are bounded well below typical genuine scores.
    assert!(
        imp_max < 12.0,
        "impostor max {imp_max:.1} is too high for calibration"
    );
}
