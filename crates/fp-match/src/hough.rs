//! Generalized-Hough alignment matcher — the baseline matcher.
//!
//! Classical minutiae matching (Ratha et al.): every (gallery minutia, probe
//! minutia) pair whose directions differ by `dtheta` votes for the rigid
//! transform `(dtheta, dx, dy)` that would map the gallery minutia onto the
//! probe minutia. The modal cell of the vote space is taken as the
//! alignment; the gallery is transformed and minutiae are paired greedily by
//! nearest neighbour under distance/angle tolerances.
//!
//! Provides an algorithmically independent second opinion next to
//! [`crate::PairTableMatcher`], which the paper's "diverse matchers"
//! extension analysis exploits.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use fp_core::geometry::{Direction, RigidMotion, Vector};
use fp_core::template::Template;
use fp_core::{MatchScore, Matcher};

use crate::PreparableMatcher;

/// Tuning parameters for [`HoughMatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoughConfig {
    /// Rotation quantization step (radians) of the vote space.
    pub rotation_step: f64,
    /// Translation quantization step (mm) of the vote space.
    pub translation_step: f64,
    /// Distance tolerance (mm) when pairing aligned minutiae.
    pub pairing_distance: f64,
    /// Direction tolerance (radians) when pairing aligned minutiae.
    pub pairing_angle: f64,
}

impl Default for HoughConfig {
    fn default() -> Self {
        HoughConfig {
            rotation_step: 0.18,
            translation_step: 1.6,
            pairing_distance: 1.1,
            pairing_angle: 0.35,
        }
    }
}

/// The generalized-Hough alignment matcher. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct HoughMatcher {
    config: HoughConfig,
    metrics: crate::metrics::HoughMetrics,
}

impl HoughMatcher {
    /// Creates a matcher with explicit tuning parameters.
    pub fn new(config: HoughConfig) -> Self {
        HoughMatcher {
            config,
            metrics: Default::default(),
        }
    }

    /// Registers this matcher's work counters (comparisons, occupied vote
    /// cells, winning vote mass) on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &fp_telemetry::Telemetry) -> Self {
        self.metrics = crate::metrics::HoughMetrics::new(telemetry);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &HoughConfig {
        &self.config
    }

    fn score_templates(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.metrics.comparisons.incr();
        let gs = gallery.minutiae();
        let ps = probe.minutiae();
        if gs.is_empty() || ps.is_empty() {
            return MatchScore::ZERO;
        }
        let cfg = &self.config;

        // Vote for (rotation, dx, dy) cells. Each vote also lands in the
        // neighbouring cells (± half step via double-resolution keys would
        // be costlier; instead we accumulate in a sparse map and scan a
        // 3x3x3 neighbourhood around the best cell at the end).
        let mut votes: HashMap<(i32, i32, i32), u32> = HashMap::new();
        for g in gs {
            for p in ps {
                let dtheta = p.direction.signed_delta(g.direction);
                let rot = Direction::from_radians(dtheta);
                let moved = g.pos.rotated(rot);
                let dx = p.pos.x - moved.x;
                let dy = p.pos.y - moved.y;
                let key = (
                    (dtheta / cfg.rotation_step).round() as i32,
                    (dx / cfg.translation_step).round() as i32,
                    (dy / cfg.translation_step).round() as i32,
                );
                *votes.entry(key).or_insert(0) += 1;
            }
        }
        self.metrics.vote_cells.record(votes.len() as u64);
        let Some((&best_key, _)) = votes.iter().max_by_key(|(k, v)| (**v, k.0, k.1, k.2)) else {
            return MatchScore::ZERO;
        };
        // Neighbourhood-refined vote mass and centroid transform.
        let mut mass = 0u32;
        let mut sum_r = 0.0;
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        for dr in -1..=1 {
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let k = (best_key.0 + dr, best_key.1 + dx, best_key.2 + dy);
                    if let Some(&v) = votes.get(&k) {
                        mass += v;
                        sum_r += v as f64 * k.0 as f64 * cfg.rotation_step;
                        sum_x += v as f64 * k.1 as f64 * cfg.translation_step;
                        sum_y += v as f64 * k.2 as f64 * cfg.translation_step;
                    }
                }
            }
        }
        self.metrics.peak_votes.record(mass as u64);
        if mass == 0 {
            return MatchScore::ZERO;
        }
        let rotation = Direction::from_radians(sum_r / mass as f64);
        let translation = Vector::new(sum_x / mass as f64, sum_y / mass as f64);
        let transform = RigidMotion::new(rotation, translation);

        // Align the gallery and pair greedily by distance.
        let aligned: Vec<_> = gs.iter().map(|m| m.transformed(&transform)).collect();
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
        for (i, a) in aligned.iter().enumerate() {
            for (j, p) in ps.iter().enumerate() {
                let d = a.pos.distance(&p.pos);
                if d <= cfg.pairing_distance
                    && a.direction.separation(p.direction) <= cfg.pairing_angle
                {
                    candidates.push((d, i, j));
                }
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        let mut g_used = vec![false; gs.len()];
        let mut p_used = vec![false; ps.len()];
        let mut matched = 0usize;
        let mut closeness = 0.0;
        for (d, i, j) in candidates {
            if g_used[i] || p_used[j] {
                continue;
            }
            g_used[i] = true;
            p_used[j] = true;
            matched += 1;
            closeness += 1.0 - d / cfg.pairing_distance;
        }
        if matched < 3 {
            // Fewer than three consistent minutiae is indistinguishable from
            // chance alignment.
            return MatchScore::ZERO;
        }
        MatchScore::new(matched as f64 * 0.7 + closeness * 0.3)
    }
}

impl Matcher for HoughMatcher {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.score_templates(gallery, probe)
    }

    fn name(&self) -> &str {
        "hough"
    }
}

impl PreparableMatcher for HoughMatcher {
    // The Hough matcher has no meaningful per-template preparation; the
    // prepared form is the template itself, so the fast path degenerates to
    // the direct path.
    type Prepared = Template;

    fn prepare(&self, template: &Template) -> Template {
        template.clone()
    }

    fn compare_prepared(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.score_templates(gallery, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::geometry::Point;
    use fp_core::minutia::{Minutia, MinutiaKind};
    use fp_core::rng::SeedTree;
    use rand::Rng;

    fn synthetic_template(seed: u64, n: usize) -> Template {
        let mut rng = SeedTree::new(seed).rng();
        let mut minutiae: Vec<Minutia> = Vec::new();
        let mut attempts = 0;
        while minutiae.len() < n && attempts < 10_000 {
            attempts += 1;
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
                continue;
            }
            minutiae.push(Minutia::new(
                pos,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                MinutiaKind::RidgeEnding,
                1.0,
            ));
        }
        Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .unwrap()
    }

    #[test]
    fn self_match_scores_high() {
        let m = HoughMatcher::default();
        let t = synthetic_template(1, 30);
        assert!(m.compare(&t, &t).value() > 18.0);
    }

    #[test]
    fn impostor_scores_low() {
        let m = HoughMatcher::default();
        let a = synthetic_template(2, 30);
        let b = synthetic_template(3, 30);
        let s = m.compare(&a, &b).value();
        assert!(s < 8.0, "impostor score = {s}");
    }

    #[test]
    fn recovers_rigid_motion() {
        let m = HoughMatcher::default();
        let t = synthetic_template(4, 30);
        let moved = t.transformed(&RigidMotion::new(
            Direction::from_radians(-0.4),
            Vector::new(3.0, 5.0),
        ));
        let self_score = m.compare(&t, &t).value();
        let moved_score = m.compare(&t, &moved).value();
        assert!(
            moved_score > self_score * 0.7,
            "self {self_score} vs moved {moved_score}"
        );
    }

    #[test]
    fn empty_inputs_are_zero() {
        let m = HoughMatcher::default();
        let e = Template::builder(500.0).build().unwrap();
        let t = synthetic_template(5, 10);
        assert_eq!(m.compare(&e, &t).value(), 0.0);
        assert_eq!(m.compare(&t, &e).value(), 0.0);
    }

    #[test]
    fn prepared_path_is_identical() {
        let m = HoughMatcher::default();
        let a = synthetic_template(6, 25);
        let b = synthetic_template(7, 25);
        assert_eq!(
            m.compare(&a, &b),
            m.compare_prepared(&m.prepare(&a), &m.prepare(&b))
        );
    }

    #[test]
    fn tiny_overlap_below_three_minutiae_scores_zero() {
        let m = HoughMatcher::default();
        let two = Template::builder(500.0)
            .capture_window_mm(10.0, 10.0)
            .push(Minutia::new(
                Point::new(0.0, 0.0),
                Direction::ZERO,
                MinutiaKind::RidgeEnding,
                1.0,
            ))
            .push(Minutia::new(
                Point::new(3.0, 0.0),
                Direction::ZERO,
                MinutiaKind::RidgeEnding,
                1.0,
            ))
            .build()
            .unwrap();
        assert_eq!(m.compare(&two, &two).value(), 0.0);
    }
}
