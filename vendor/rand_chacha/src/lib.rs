//! Offline vendored stand-in for the `rand_chacha` crate.
//!
//! Implements `ChaCha8Rng`/`ChaCha12Rng`/`ChaCha20Rng` as plain-Rust ChaCha
//! keystream generators with the exact output stream of `rand_chacha` 0.3:
//!
//! - the 32-byte seed is the ChaCha key (little-endian words), the block
//!   counter starts at 0 and the nonce/stream is 0;
//! - output words are the keystream interpreted as little-endian `u32`s;
//! - word delivery follows `rand_core::block::BlockRng` semantics with a
//!   64-word (four-block) buffer, including its `next_u64` alignment rules.
//!
//! Bit-exactness matters here: every statistical threshold in the study
//! harness was tuned against streams from the real crates, so the core is
//! validated against the RFC 8439 ChaCha20 test vector in the unit tests.

pub use rand_core;
use rand_core::{RngCore, SeedableRng};

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;
/// Blocks buffered per refill, matching `rand_chacha`'s four-block backend.
const BUF_BLOCKS: usize = 4;
/// Total buffered words.
const BUF_WORDS: usize = BLOCK_WORDS * BUF_BLOCKS;

#[inline(always)]
fn quarter_round(x: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// Computes one ChaCha block (`rounds` must be even) into `out`.
fn chacha_block(
    key: &[u32; 8],
    counter: u64,
    stream: u64,
    rounds: u32,
    out: &mut [u32; BLOCK_WORDS],
) {
    let init: [u32; BLOCK_WORDS] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let mut x = init;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(init.iter())) {
        *o = w.wrapping_add(*i);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone)]
        pub struct $name {
            key: [u32; 8],
            /// Block counter of the next block to generate.
            counter: u64,
            stream: u64,
            buf: [u32; BUF_WORDS],
            /// Read position in `buf`; `BUF_WORDS` means "empty, refill".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                for block in 0..BUF_BLOCKS {
                    let mut out = [0u32; BLOCK_WORDS];
                    chacha_block(
                        &self.key,
                        self.counter.wrapping_add(block as u64),
                        self.stream,
                        $rounds,
                        &mut out,
                    );
                    self.buf[block * BLOCK_WORDS..(block + 1) * BLOCK_WORDS].copy_from_slice(&out);
                }
                self.counter = self.counter.wrapping_add(BUF_BLOCKS as u64);
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    stream: 0,
                    buf: [0; BUF_WORDS],
                    index: BUF_WORDS,
                }
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                if self.index >= BUF_WORDS {
                    self.refill();
                    self.index = 0;
                }
                let value = self.buf[self.index];
                self.index += 1;
                value
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                // BlockRng's read_u64_from_u32 semantics: low word first,
                // with the two alignment edge cases at the buffer boundary.
                let len = BUF_WORDS;
                if self.index < len - 1 {
                    let lo = self.buf[self.index] as u64;
                    let hi = self.buf[self.index + 1] as u64;
                    self.index += 2;
                    (hi << 32) | lo
                } else if self.index >= len {
                    self.refill();
                    self.index = 2;
                    let lo = self.buf[0] as u64;
                    let hi = self.buf[1] as u64;
                    (hi << 32) | lo
                } else {
                    // index == len - 1: combine the last buffered word with
                    // the first word of the next refill.
                    let lo = self.buf[len - 1] as u64;
                    self.refill();
                    self.index = 1;
                    let hi = self.buf[0] as u64;
                    (hi << 32) | lo
                }
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                let mut chunks = dest.chunks_exact_mut(4);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.next_u32().to_le_bytes());
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let last = self.next_u32().to_le_bytes();
                    rem.copy_from_slice(&last[..rem.len()]);
                }
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "A ChaCha RNG with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "A ChaCha RNG with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "A ChaCha RNG with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// First keystream block of ChaCha20 with an all-zero key and nonce
    /// (RFC 8439 / original djb test vector), as little-endian words.
    const CHACHA20_ZERO_BLOCK0: [u32; 16] = [
        0xade0_b876,
        0x903d_f1a0,
        0xe56a_5d40,
        0x28bd_8653,
        0xb819_d2bd,
        0x1aed_8da0,
        0xccef_36a8,
        0xc70d_778b,
        0x7c59_41da,
        0x8d48_5751,
        0x3fe0_2477,
        0x374a_d8b8,
        0xf4b8_436a,
        0x1ca1_1815,
        0x69b6_87c3,
        0x8665_eeb2,
    ];

    #[test]
    fn chacha20_matches_rfc_vector() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        for &expected in &CHACHA20_ZERO_BLOCK0 {
            assert_eq!(rng.next_u32(), expected);
        }
    }

    #[test]
    fn next_u64_combines_low_word_first() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        for _ in 0..40 {
            let lo = a.next_u32() as u64;
            let hi = a.next_u32() as u64;
            assert_eq!(b.next_u64(), (hi << 32) | lo);
        }
    }

    #[test]
    fn next_u64_straddles_buffer_boundary() {
        // Consume 63 words, leaving one word in the buffer; the following
        // next_u64 must pair word 63 with word 64 (first of the next refill).
        let mut a = ChaCha8Rng::from_seed([3u8; 32]);
        let mut b = ChaCha8Rng::from_seed([3u8; 32]);
        let mut words = Vec::new();
        for _ in 0..65 {
            words.push(a.next_u32());
        }
        for _ in 0..31 {
            b.next_u64();
        }
        b.next_u32(); // index 62 -> 63
        let straddled = b.next_u64();
        assert_eq!(straddled, ((words[64] as u64) << 32) | words[63] as u64);
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = ChaCha8Rng::from_seed([0u8; 32]);
        let mut b = ChaCha8Rng::from_seed([1u8; 32]);
        assert_ne!(
            (0..8).map(|_| a.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u32()).collect::<Vec<_>>()
        );
    }
}
