//! The shard server: one process, one [`CandidateIndex`], one TCP listener.
//!
//! Deliberately boring concurrency — blocking thread-per-connection over an
//! `RwLock`-guarded index. Stage-1 and stage-2 requests take the read lock
//! (concurrent searches proceed in parallel); enrollment takes the write
//! lock. The accept loop polls a stop flag so [`Frame::Shutdown`] (or a
//! test's [`ServerHandle::stop`]) terminates the process cleanly without
//! async machinery — the whole crate stays std-only.
//!
//! # Config adoption
//!
//! The first [`Frame::EnrollBatch`] carries the coordinator's
//! [`IndexConfig`]; an **empty** shard adopts it wholesale. Once enrolled,
//! any batch carrying a *different* config is rejected with
//! [`code::CONFIG_MISMATCH`] — stage-1 scores depend on the tuning, and a
//! shard silently scoring under different parameters would break the
//! byte-identical guarantee in the quietest possible way.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardBackend};
use fp_match::PreparableMatcher;
use fp_telemetry::Telemetry;

use crate::wire::{code, read_frame, write_frame, Frame, WireError};

/// How long the accept loop and idle connections sleep between stop-flag
/// polls. Bounds shutdown latency.
const POLL: Duration = Duration::from_millis(100);

/// Read deadline once a frame has started arriving. Loopback frames land in
/// microseconds; this only bounds how long a half-written frame from a
/// dying peer can pin a connection thread.
const FRAME_DEADLINE: Duration = Duration::from_secs(10);

struct State<M: PreparableMatcher> {
    matcher: M,
    index: RwLock<CandidateIndex<M>>,
    stop: Arc<AtomicBool>,
    /// Instruments the [`Frame::Stats`] snapshot is taken from; inert
    /// unless [`ShardServer::with_telemetry`] was called.
    telemetry: Telemetry,
    /// Fault-injection hook: XORed into every reported
    /// [`Frame::FingerprintOk`] value. Zero (the default) is a no-op; the
    /// loopback e2e suite sets it non-zero to prove a drifting shard is
    /// caught by the coordinator's mirror comparison.
    skew: Arc<AtomicU64>,
}

/// A TCP server exposing one gallery shard over the wire protocol.
///
/// `study serve-shard` wraps this in a binary; tests drive it in-process
/// via [`ShardServer::spawn`].
pub struct ShardServer<M: PreparableMatcher> {
    listener: TcpListener,
    state: Arc<State<M>>,
}

/// Handle to a server running on a background thread (see
/// [`ShardServer::spawn`]).
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Asks the accept loop and every connection thread to wind down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops the server and waits for the accept loop to exit.
    pub fn join(self) {
        self.stop();
        let _ = self.thread.join();
    }
}

impl<M> ShardServer<M>
where
    M: PreparableMatcher + Clone + Send + Sync + 'static,
    M::Prepared: Send + Sync,
{
    /// Binds a listener (use port 0 for an OS-assigned port) around an
    /// empty index with the default config; the first enroll batch brings
    /// the coordinator's config.
    pub fn bind(matcher: M, addr: impl ToSocketAddrs) -> std::io::Result<ShardServer<M>> {
        let listener = TcpListener::bind(addr)?;
        Ok(ShardServer {
            listener,
            state: Arc::new(State {
                index: RwLock::new(CandidateIndex::new(matcher.clone())),
                matcher,
                stop: Arc::new(AtomicBool::new(false)),
                telemetry: Telemetry::disabled(),
                skew: Arc::new(AtomicU64::new(0)),
            }),
        })
    }

    /// Attaches a telemetry handle: the index registers its `index.*`
    /// instruments on it, and [`Frame::Stats`] answers with a snapshot of
    /// it. Must be called before [`run`](Self::run)/[`spawn`](Self::spawn)
    /// (while the server is still a builder).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        let state =
            Arc::get_mut(&mut self.state).expect("with_telemetry must be called before spawn/run");
        state.telemetry = telemetry.clone();
        let mut index = state.index.write().expect("index lock poisoned");
        *index = CandidateIndex::new(state.matcher.clone()).with_telemetry(telemetry);
        drop(index);
        self
    }

    /// Fault-injection handle for tests: any non-zero word stored here is
    /// XORed into every [`Frame::FingerprintOk`] value this server reports,
    /// simulating a shard whose recorded chain disagrees with what it
    /// actually served (bit rot, version skew, a forged score).
    pub fn skew_fingerprint(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.state.skew)
    }

    /// The bound address (the port to advertise when bound to port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a [`Frame::Shutdown`] arrives (or [`ServerHandle::stop`]
    /// flips the flag). Blocking; each connection gets its own thread.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers = Vec::new();
        while !self.state.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    workers.push(std::thread::spawn(move || serve_connection(stream, state)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a stop/join
    /// handle. Used by in-process tests; the `serve-shard` binary calls
    /// [`run`](Self::run) directly.
    pub fn spawn(self) -> ServerHandle {
        let stop = Arc::clone(&self.state.stop);
        let thread = std::thread::spawn(move || {
            let _ = self.run();
        });
        ServerHandle { stop, thread }
    }
}

/// Serves one client connection until it closes, errors, or the server
/// stops. Peeks with a short read deadline so the stop flag is honoured on
/// idle connections, then reads whole frames under a longer deadline.
fn serve_connection<M>(stream: TcpStream, state: Arc<State<M>>)
where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut peek = [0u8; 1];
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        let _ = stream.set_read_timeout(Some(POLL));
        match stream.peek(&mut peek) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return,
        }
        let _ = stream.set_read_timeout(Some(FRAME_DEADLINE));
        let request = match read_frame(&mut stream) {
            Ok((frame, _bytes)) => frame,
            Err(WireError::Io(_)) | Err(WireError::Truncated { .. }) => return,
            Err(e) => {
                // Decodable-but-invalid bytes: answer with a typed error.
                // Framing may be out of sync afterwards, so close.
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        code: code::BAD_REQUEST,
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        let shutdown = matches!(request, Frame::Shutdown);
        let response = handle_request(request, &state);
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
        let _ = stream.flush();
        if shutdown {
            state.stop.store(true, Ordering::Relaxed);
            return;
        }
    }
}

fn handle_request<M>(request: Frame, state: &State<M>) -> Frame
where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    match request {
        Frame::EnrollBatch { config, templates } => enroll(config, templates, state),
        Frame::StageOne { probe } => {
            let index = state.index.read().expect("index lock poisoned");
            match index.stage_one(&probe) {
                Ok(scores) => Frame::StageOneOk { scores },
                Err(e) => Frame::Error {
                    code: code::INTERNAL,
                    detail: e.to_string(),
                },
            }
        }
        Frame::Rerank { probe, selected } => {
            let index = state.index.read().expect("index lock poisoned");
            let len = index.len() as u32;
            if let Some(&bad) = selected.iter().find(|&&id| id >= len) {
                return Frame::Error {
                    code: code::BAD_REQUEST,
                    detail: format!("re-rank id {bad} out of range (shard holds {len})"),
                };
            }
            match index.stage_two(&probe, &selected) {
                Ok(candidates) => Frame::RerankOk { candidates },
                Err(e) => Frame::Error {
                    code: code::INTERNAL,
                    detail: e.to_string(),
                },
            }
        }
        Frame::Health => Frame::HealthOk {
            shard_len: state.index.read().expect("index lock poisoned").len() as u32,
        },
        Frame::Fingerprint => {
            let snapshot = state
                .index
                .read()
                .expect("index lock poisoned")
                .part_fingerprint();
            Frame::FingerprintOk {
                value: snapshot.value ^ state.skew.load(Ordering::Relaxed),
                searches: snapshot.searches,
            }
        }
        Frame::Stats => {
            let snapshot = state.telemetry.snapshot();
            Frame::StatsOk {
                counters: snapshot.counters.into_iter().collect(),
                durations: snapshot.durations.into_iter().collect(),
                values: snapshot.values.into_iter().collect(),
            }
        }
        Frame::Shutdown => Frame::ShutdownOk,
        // Response frames arriving as requests are a client bug.
        other => Frame::Error {
            code: code::BAD_REQUEST,
            detail: format!("frame '{}' is not a request", other.kind()),
        },
    }
}

fn enroll<M>(config: IndexConfig, templates: Vec<Template>, state: &State<M>) -> Frame
where
    M: PreparableMatcher + Clone + Send + Sync,
    M::Prepared: Send + Sync,
{
    let mut index = state.index.write().expect("index lock poisoned");
    if index.is_empty() {
        if *index.config() != config {
            // Rebuilding on config adoption resets the part-fingerprint
            // chain too — correct, since the new chain must start from the
            // adopted config's base. Re-attach the telemetry handle the
            // rebuild would otherwise lose.
            *index = CandidateIndex::with_config(state.matcher.clone(), config)
                .with_telemetry(&state.telemetry);
        }
    } else if *index.config() != config {
        return Frame::Error {
            code: code::CONFIG_MISMATCH,
            detail: format!(
                "shard enrolled under {:?}, coordinator sent {:?}",
                index.config(),
                config
            ),
        };
    }
    index.enroll_all(&templates);
    Frame::EnrollOk {
        enrolled: templates.len() as u32,
        shard_len: index.len() as u32,
    }
}
