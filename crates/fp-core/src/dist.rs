//! Small, self-contained samplers for the distributions the simulation needs.
//!
//! `rand` 0.8 ships only uniform-style primitives; rather than pull in
//! `rand_distr` we implement the handful of distributions used by the
//! synthesis and sensing models. All samplers take `&mut impl Rng` so any
//! deterministic stream from [`crate::rng`] works.

use std::f64::consts::PI;

use rand::Rng;

/// Samples a standard normal deviate using the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen::<f64>() * 2.0 - 1.0;
        let v = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mean, sd^2)`.
///
/// # Panics
///
/// Panics in debug builds when `sd` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0, "standard deviation must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Samples `N(mean, sd^2)` truncated to `[lo, hi]` by rejection, falling back
/// to clamping after 64 rejections (only relevant for pathological bounds).
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "truncation interval must be ordered");
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if x >= lo && x <= hi {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Samples a log-normal deviate with the given parameters of the underlying
/// normal.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples from the von Mises distribution `VM(mu, kappa)` on `(-pi, pi]`
/// using the Best–Fisher (1979) rejection algorithm.
///
/// `kappa = 0` reduces to the uniform distribution on the circle; large
/// `kappa` concentrates around `mu`. Used for angular jitter of minutia
/// directions under sensor noise.
pub fn von_mises<R: Rng + ?Sized>(rng: &mut R, mu: f64, kappa: f64) -> f64 {
    debug_assert!(kappa >= 0.0, "kappa must be non-negative");
    if kappa < 1e-9 {
        return rng.gen::<f64>() * 2.0 * PI - PI;
    }
    let tau = 1.0 + (1.0 + 4.0 * kappa * kappa).sqrt();
    let rho = (tau - (2.0 * tau).sqrt()) / (2.0 * kappa);
    let r = (1.0 + rho * rho) / (2.0 * rho);
    loop {
        let u1: f64 = rng.gen();
        let z = (PI * u1).cos();
        let f = (1.0 + r * z) / (r + z);
        let c = kappa * (r - f);
        let u2: f64 = rng.gen();
        if c * (2.0 - c) - u2 > 0.0 || (c / u2).ln() + 1.0 - c >= 0.0 {
            let u3: f64 = rng.gen();
            let sign = if u3 > 0.5 { 1.0 } else { -1.0 };
            let theta = mu + sign * f.acos();
            // wrap to (-pi, pi]
            let w = theta.rem_euclid(2.0 * PI);
            return if w > PI { w - 2.0 * PI } else { w };
        }
    }
}

/// Samples a Poisson deviate.
///
/// Uses Knuth's product-of-uniforms method for `lambda < 30` and a clamped
/// normal approximation above (adequate for the minutiae-count use case).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.max(0.0).round() as u64
    }
}

/// Draws an index from a discrete distribution given non-negative weights.
///
/// # Errors
///
/// Returns [`crate::Error`] when `weights` is empty, contains a negative or
/// non-finite entry, or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> crate::Result<usize> {
    if weights.is_empty() {
        return Err(crate::Error::empty("weights"));
    }
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(crate::Error::invalid(
                "weights",
                format!("weight {i} is {w}; weights must be finite and non-negative"),
            ));
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(crate::Error::invalid(
            "weights",
            "weights must not all be zero",
        ));
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return Ok(i);
        }
    }
    Ok(weights.len() - 1) // floating-point leftovers land on the last bucket
}

/// Samples a point uniformly from the unit disc (rejection-free, via polar
/// coordinates with sqrt-radius correction).
pub fn unit_disc<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let r = rng.gen::<f64>().sqrt();
    let theta = rng.gen::<f64>() * 2.0 * PI;
    (r * theta.cos(), r * theta.sin())
}

/// Samples `Beta(a, b)` via the ratio of gamma deviates (Marsaglia–Tsang for
/// the gamma components). Used for skin-condition factors in `[0, 1]`.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    let x = gamma(rng, a);
    let y = gamma(rng, b);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Samples `Gamma(shape, 1)` using Marsaglia–Tsang (2000), with the boosting
/// trick for `shape < 1`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;

    fn rng() -> crate::rng::StreamRng {
        SeedTree::new(0xD157_0001).rng()
    }

    const N: usize = 20_000;

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..N).map(|_| normal(&mut r, 2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.5, "var = {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let x = truncated_normal(&mut r, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn von_mises_concentrates_with_large_kappa() {
        let mut r = rng();
        let mu = 1.0;
        let spread: f64 = (0..2000)
            .map(|_| (von_mises(&mut r, mu, 50.0) - mu).abs())
            .sum::<f64>()
            / 2000.0;
        assert!(spread < 0.2, "spread = {spread}");
    }

    #[test]
    fn von_mises_zero_kappa_is_uniformish() {
        let mut r = rng();
        let mean: f64 = (0..N).map(|_| von_mises(&mut r, 0.0, 0.0)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn von_mises_stays_on_circle() {
        let mut r = rng();
        for kappa in [0.0, 0.5, 4.0, 100.0] {
            for _ in 0..500 {
                let x = von_mises(&mut r, 3.0, kappa);
                assert!(x > -PI - 1e-12 && x <= PI + 1e-12, "x = {x}");
            }
        }
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut r = rng();
        for lambda in [0.5, 4.0, 12.0, 45.0] {
            let mean: f64 = (0..N).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / N as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda.max(1.0),
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..N {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        let f2 = counts[2] as f64 / N as f64;
        assert!((f2 - 0.6).abs() < 0.03, "f2 = {f2}");
    }

    #[test]
    fn weighted_index_validates() {
        let mut r = rng();
        assert!(weighted_index(&mut r, &[]).is_err());
        assert!(weighted_index(&mut r, &[0.0, 0.0]).is_err());
        assert!(weighted_index(&mut r, &[-1.0, 2.0]).is_err());
        assert!(weighted_index(&mut r, &[f64::NAN]).is_err());
    }

    #[test]
    fn unit_disc_stays_inside() {
        let mut r = rng();
        for _ in 0..2000 {
            let (x, y) = unit_disc(&mut r);
            assert!(x * x + y * y <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn beta_mean_is_a_over_a_plus_b() {
        let mut r = rng();
        let mean: f64 = (0..N).map(|_| beta(&mut r, 2.0, 6.0)).sum::<f64>() / N as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean = {mean}");
        for _ in 0..1000 {
            let x = beta(&mut r, 0.5, 0.5);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for shape in [0.5, 1.0, 3.0, 9.0] {
            let mean: f64 = (0..N).map(|_| gamma(&mut r, shape)).sum::<f64>() / N as f64;
            assert!(
                (mean - shape).abs() < 0.12 * shape.max(1.0),
                "shape={shape} mean={mean}"
            );
        }
    }
}
