//! The study driver: regenerates every table and figure of Lugini et al.
//! (DSN 2013) on the synthetic substrate.
//!
//! ```sh
//! study all                         # every experiment at the default scale
//! study table5 --subjects 494      # one experiment at paper scale
//! study ext-scaling --subjects 1000 # 1:N search ladder: 1k/5k/10k galleries
//! study all --json results.json    # machine-readable output (incl. telemetry)
//! study all --metrics metrics.json # telemetry snapshot to its own file
//! study devices                    # print the device table (paper Table 1)
//! study metrics                    # explain the telemetry instruments
//! study verify --subjects 150      # check the paper's findings hold
//! study render --seed 7 --out print.pgm   # render a synthetic print (PGM)
//! ```

use std::process::ExitCode;

use fp_sensor::DEVICES;
use fp_study::config::StudyConfig;
use fp_study::experiments;
use fp_study::scores::StudyData;
use fp_telemetry::Telemetry;

struct Args {
    experiment: String,
    subjects: Option<usize>,
    seed: Option<u64>,
    json: Option<String>,
    out: Option<String>,
    metrics: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().unwrap_or_else(|| "all".to_string());
    let mut parsed = Args {
        experiment,
        subjects: None,
        seed: None,
        json: None,
        out: None,
        metrics: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--subjects" => {
                let v = args.next().ok_or("--subjects needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --subjects: {v}"))?;
                if n < 2 {
                    return Err(format!(
                        "--subjects must be at least 2 (genuine and impostor pairs both need subjects), got {n}"
                    ));
                }
                parsed.subjects = Some(n);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = Some(v.parse().map_err(|_| format!("bad --seed: {v}"))?);
            }
            "--json" => {
                parsed.json = Some(args.next().ok_or("--json needs a path")?);
            }
            "--out" => {
                parsed.out = Some(args.next().ok_or("--out needs a path")?);
            }
            "--metrics" => {
                parsed.metrics = Some(args.next().ok_or("--metrics needs a path")?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(parsed)
}

fn print_devices() {
    println!("devices (paper Table 1):");
    println!(
        "{:<6}{:<42}{:>8}{:>12}{:>14}",
        "id", "model", "dpi", "image px", "capture mm"
    );
    for d in &DEVICES {
        println!(
            "{:<6}{:<42}{:>8}{:>12}{:>14}",
            d.id.to_string(),
            d.model,
            d.resolution_dpi,
            format!("{}x{}", d.image_px.0, d.image_px.1),
            format!("{}x{}", d.capture_mm.0, d.capture_mm.1),
        );
    }
}

fn print_metrics_help() {
    println!("telemetry instruments (enabled for every experiment run):");
    println!();
    println!("  export: `--json PATH` embeds a \"telemetry\" section in the results;");
    println!("  `--metrics PATH` writes the snapshot alone. `study all` also prints a");
    println!("  one-screen summary to stderr. Counters and work-size histograms are");
    println!("  pure functions of the seed (identical across same-seed runs);");
    println!("  durations, gauges and stage timings vary with the machine.");
    println!();
    println!("  counters (deterministic work tallies)");
    println!("    synth.masters                     master prints synthesized");
    println!("    sensor.d<d>.impressions           impressions captured per device");
    println!("    sensor.minutiae.dropped/vignetted/clipped/spurious");
    println!("                                      acquisition gain/loss channels");
    println!("    match.{{pairtable,hough,mcc}}.comparisons   matcher invocations");
    println!("    scores.comparisons.genuine/impostor        study comparisons");
    println!();
    println!("  work-size histograms (deterministic)");
    println!("    synth.minutiae_per_master         master template sizes");
    println!("    sensor.minutiae_per_impression    captured template sizes");
    println!("    match.pairtable.table_entries/associations/cluster_size");
    println!("    match.hough.vote_cells/peak_votes");
    println!("    match.mcc.valid_cylinders");
    println!();
    println!("  duration histograms (spans; wall time)");
    println!("    study.dataset, study.dataset.population, study.scores");
    println!("    scores.cell.g<g>p<p>              per (gallery, probe) device cell");
    println!("    experiment.<id>                   per report");
    println!();
    println!("  stages (per-thread utilization)");
    println!("    dataset.capture, scores.prepare, scores.genuine, scores.impostor");
}

fn write_json(path: &str, value: &serde_json::Value) -> Result<(), ExitCode> {
    match std::fs::write(
        path,
        serde_json::to_string_pretty(value).expect("serializable"),
    ) {
        Ok(()) => {
            eprintln!("wrote {path}");
            Ok(())
        }
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: study <all|devices|metrics|verify|render|{}> \
                 [--subjects N] [--seed S] [--json PATH] [--metrics PATH] [--out PATH]",
                experiments::ALL_IDS.join("|")
            );
            return ExitCode::FAILURE;
        }
    };

    if args.experiment == "devices" {
        print_devices();
        return ExitCode::SUCCESS;
    }

    if args.experiment == "metrics" {
        print_metrics_help();
        return ExitCode::SUCCESS;
    }

    if args.experiment == "render" {
        // Render one synthetic fingerprint with its master minutiae marked.
        let seed = args.seed.unwrap_or(7);
        let path = args
            .out
            .clone()
            .unwrap_or_else(|| "fingerprint.pgm".to_string());
        let master = fp_synth::master::MasterPrint::generate(
            &fp_core::rng::SeedTree::new(seed),
            fp_core::ids::Digit::Index,
            1.0,
        );
        let window = fp_core::geometry::Rect::centred(fp_core::geometry::Point::ORIGIN, 18.0, 22.0)
            .expect("valid window");
        let config = fp_image::render::RenderConfig::default();
        eprintln!(
            "rendering {} print (seed {seed}) at 500 dpi ...",
            master.class()
        );
        let mut image = fp_image::render::render_master(
            &master,
            window,
            &config,
            &fp_core::rng::SeedTree::new(seed ^ 0x9E37),
        );
        let template = fp_core::template::Template::builder(500.0)
            .capture_window(window)
            .extend(
                master
                    .minutiae()
                    .iter()
                    .filter(|m| window.contains(&m.pos))
                    .copied(),
            )
            .build()
            .expect("valid template");
        fp_image::render::overlay_minutiae(&mut image, &template, window, 500.0);
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fp_image::pgm::write_pgm(&image, file) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path}: {}x{} px, {} master minutiae marked",
            image.width(),
            image.height(),
            template.len()
        );
        if let Some(json_path) = args.json {
            let payload = serde_json::json!({
                "seed": seed,
                "path": path,
                "width": image.width(),
                "height": image.height(),
                "minutiae": template.len(),
            });
            if let Err(code) = write_json(&json_path, &payload) {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }

    if args.experiment == "verify" {
        let mut builder = StudyConfig::builder();
        if let Some(s) = args.subjects {
            builder = builder.subjects(s);
        }
        if let Some(s) = args.seed {
            builder = builder.seed(s);
        }
        let config = builder.build();
        eprintln!(
            "verifying paper findings on {} subjects (seed {}) ...",
            config.subjects, config.seed
        );
        let data = StudyData::generate(&config);
        let findings = fp_study::findings::check_all(&data);
        let (report, all_hold) = fp_study::findings::render(&findings);
        println!("{report}");
        if let Some(path) = args.json {
            let payload = serde_json::json!({"config": config, "findings": findings});
            if let Err(code) = write_json(&path, &payload) {
                return code;
            }
        }
        return if all_hold {
            println!("all findings hold");
            ExitCode::SUCCESS
        } else {
            println!("SOME FINDINGS FAILED (small cohorts are noisy; try --subjects 150+)");
            ExitCode::FAILURE
        };
    }

    let mut builder = StudyConfig::builder();
    if let Some(s) = args.subjects {
        builder = builder.subjects(s);
    }
    if let Some(s) = args.seed {
        builder = builder.seed(s);
    }

    if args.experiment == "ext-scaling" {
        // The scaling ladder builds its own synthetic galleries (subjects,
        // 5x, 10x); skip the full dataset/score pipeline so large ladders
        // don't pay for rendering and score matrices they never read.
        let config = builder.build();
        eprintln!(
            "scaling ladder: galleries of {}/{}/{} templates, seed {} ...",
            config.subjects,
            config.subjects * 5,
            config.subjects * 10,
            config.seed
        );
        let telemetry = Telemetry::enabled();
        let report = fp_study::experiments::ext_scaling::run_with(&config, &telemetry);
        println!("{}", report.render());
        let snapshot = telemetry.snapshot();
        if let Some(path) = args.json {
            let payload = serde_json::json!({
                "config": config,
                "reports": [report],
                "telemetry": snapshot,
            });
            if let Err(code) = write_json(&path, &payload) {
                return code;
            }
        }
        if let Some(path) = args.metrics {
            let payload = serde_json::to_value(&snapshot).expect("serializable");
            if let Err(code) = write_json(&path, &payload) {
                return code;
            }
        }
        return ExitCode::SUCCESS;
    }

    let config = builder.build();
    eprintln!(
        "generating study data: {} subjects, {} impostor pairs per cell, seed {} ...",
        config.subjects, config.impostors_per_cell, config.seed
    );
    let telemetry = Telemetry::enabled();
    let start = std::time::Instant::now();
    let data = StudyData::generate_with(&config, &telemetry);
    eprintln!("score matrices ready in {:.1?}", start.elapsed());

    let reports = if args.experiment == "all" {
        experiments::run_all_with(&data, &telemetry)
    } else {
        match experiments::run_with(&args.experiment, &data, &telemetry) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "unknown experiment `{}` (known: all, devices, metrics, {})",
                    args.experiment,
                    experiments::ALL_IDS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    };

    for report in &reports {
        println!("{}", report.render());
    }

    let snapshot = telemetry.snapshot();
    if args.experiment == "all" {
        eprintln!("{}", fp_telemetry::render_summary(&snapshot));
    }

    if let Some(path) = args.json {
        let payload = serde_json::json!({
            "config": config,
            "reports": reports,
            "telemetry": snapshot,
        });
        if let Err(code) = write_json(&path, &payload) {
            return code;
        }
    }
    if let Some(path) = args.metrics {
        let payload = serde_json::to_value(&snapshot).expect("serializable");
        if let Err(code) = write_json(&path, &payload) {
            return code;
        }
    }
    ExitCode::SUCCESS
}
