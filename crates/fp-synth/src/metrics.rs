//! Telemetry instruments for master-print synthesis.
//!
//! The `Default` bundle is disabled (every record is a no-op); construct
//! with [`SynthMetrics::new`] to record into a live
//! [`Telemetry`](fp_telemetry::Telemetry) registry. Everything counted
//! here is a pure function of the seed, so same-seed runs report identical
//! values.

use fp_telemetry::{Counter, Telemetry, ValueHistogram};

/// Instruments for [`crate::MasterPrint`] generation.
#[derive(Debug, Clone, Default)]
pub struct SynthMetrics {
    /// `synth.masters` — master prints generated.
    pub(crate) masters: Counter,
    /// `synth.minutiae_per_master` — ground-truth minutiae per master.
    pub(crate) minutiae_per_master: ValueHistogram,
}

impl SynthMetrics {
    /// Registers the synthesis instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> SynthMetrics {
        SynthMetrics {
            masters: telemetry.counter("synth.masters"),
            minutiae_per_master: telemetry.value("synth.minutiae_per_master"),
        }
    }

    /// Records one generated master with its minutiae count.
    pub(crate) fn record_master(&self, minutiae: usize) {
        self.masters.incr();
        self.minutiae_per_master.record(minutiae as u64);
    }
}
