//! Error types shared across the workspace.

use std::fmt;

/// Error returned by fallible constructors and pipelines in the core crates.
///
/// The variants are intentionally coarse: fine-grained context travels in the
/// message, which follows the Rust API guidelines style (lowercase, no
/// trailing punctuation).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A numeric or structural parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// An operation required a non-empty template or collection.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// Two operands were dimensionally or semantically incompatible.
    Incompatible {
        /// Description of the mismatch.
        message: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`Error::Empty`].
    pub fn empty(what: &'static str) -> Self {
        Error::Empty { what }
    }

    /// Convenience constructor for [`Error::Incompatible`].
    pub fn incompatible(message: impl Into<String>) -> Self {
        Error::Incompatible {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::Empty { what } => write!(f, "{what} must not be empty"),
            Error::Incompatible { message } => write!(f, "incompatible operands: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = Error::invalid("dpi", "must be positive");
        let s = e.to_string();
        assert!(s.starts_with("invalid parameter `dpi`"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn empty_error_names_subject() {
        assert_eq!(
            Error::empty("template").to_string(),
            "template must not be empty"
        );
    }

    #[test]
    fn incompatible_error_carries_message() {
        let e = Error::incompatible("500 dpi vs 1000 dpi");
        assert!(e.to_string().contains("500 dpi vs 1000 dpi"));
    }
}
