//! Stage-1 cylinder-scoring kernel: the cache-blocked SoA arena kernel vs
//! the scalar reference path, over the same enrolled gallery ladder the
//! shard benches use. Both paths produce bitwise-identical scores (pinned
//! by fp-index's kernel proptest suite and `study check-kernel`); these
//! benches measure only the wall-clock effect of the arena layout and
//! blocking — the before/after pair the README perf table quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::synthetic_gallery;
use fp_index::{CandidateIndex, IndexConfig};
use fp_match::PairTableMatcher;

fn stage1_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage1");
    for (gallery_size, tag, samples) in [(2_000usize, "2k", 20), (10_000, "10k", 10)] {
        let (gallery, probe) = synthetic_gallery(gallery_size);
        let mut index = CandidateIndex::with_config(
            PairTableMatcher::default(),
            IndexConfig::scaled(gallery.len()),
        );
        index.enroll_all(&gallery);
        group.sample_size(samples);
        group.bench_function(format!("blocked_{tag}"), |b| {
            b.iter(|| black_box(index.stage1_cylinder_scores(black_box(&probe))))
        });
        group.bench_function(format!("scalar_{tag}"), |b| {
            b.iter(|| black_box(index.stage1_cylinder_scores_reference(black_box(&probe))))
        });
    }
    group.finish();
}

criterion_group!(benches, stage1_benches);
criterion_main!(benches);
