//! # fp-telemetry
//!
//! Std-only observability for the study harness: spans, counters, gauges,
//! lock-free histograms, a throttled progress reporter and per-stage thread
//! utilization — exported as one JSON tree so `study --json` output gains a
//! `"telemetry"` section that can be diffed across runs.
//!
//! The paper's pipeline runs ~616k comparisons behind a single `Instant`;
//! this crate opens that black box without a `tracing` dependency (the
//! build environment is offline and the approved dependency list is small).
//!
//! ## Design
//!
//! Everything hangs off a [`Telemetry`] handle — a cheap-to-clone
//! `Option<Arc<...>>`. [`Telemetry::disabled`] (the `Default`) carries
//! `None`: every counter increment, histogram record and span is a no-op
//! that never allocates, locks, or reads the clock, so tests and benches
//! pay nothing unless they opt in via [`Telemetry::enabled`]. There is no
//! global registry; the handle is threaded explicitly through the pipeline
//! (`StudyData::generate_with` and friends).
//!
//! Hot paths never lock: [`Counter`], [`Gauge`] and the histograms hand out
//! `Arc`s of atomics at registration time, so a matcher can pre-register
//! its instruments once and bump them 600k times with relaxed atomics.
//!
//! Determinism: counters and value histograms measure *work* (pair-table
//! entries, cluster sizes, comparisons), which is a pure function of the
//! seed — two same-seed runs report identical values. Durations and stage
//! utilization measure *time* and naturally vary; they live in separate
//! sections of the snapshot so consumers can diff the deterministic parts.
//!
//! ```
//! use fp_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! let items = telemetry.counter("pipeline.items");
//! {
//!     let _span = telemetry.span("pipeline");
//!     for _ in 0..10 {
//!         items.incr();
//!     }
//! }
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.counters["pipeline.items"], 10);
//! assert_eq!(snapshot.durations["pipeline"].count, 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

mod event;
mod hist;
mod progress;
mod runfp;
mod snapshot;
mod span;
mod stage;
mod trace;

pub use event::{EventRecord, Level};
pub use hist::{DurationHistogram, HistogramSnapshot, ValueHistogram};
pub use progress::Progress;
pub use runfp::{
    FingerprintChain, FingerprintSnapshot, Fingerprinted, RunFingerprint, RUNFP_VERSION,
};
pub use snapshot::{render_summary, MetricsSnapshot, TraceHealth};
pub use span::{DetachedSpan, Span};
pub use stage::{StageRecorder, StageStats, ThreadStats, WorkerStats};
pub use trace::{
    CtxGuard, SelfTime, SpanRecord, TraceCtx, TraceSnapshot, DEFAULT_EVENT_CAPACITY,
    DEFAULT_SPAN_CAPACITY, LOCAL_PID, REMOTE_PARENT_ATTR,
};

use hist::HistogramCore;
use trace::TraceBuffer;

/// The telemetry handle: all instruments are created through it.
///
/// Cloning is cheap (an `Arc` bump, or nothing when disabled) and all
/// clones share the same registry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`.
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Wall-time histograms, recorded in nanoseconds.
    durations: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    /// Work-size histograms (pair-table entries, cluster sizes, ...).
    values: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    /// Per-stage thread statistics from instrumented `parallel_map` runs.
    stages: Mutex<Vec<StageStats>>,
    /// The flight recorder: span tree + structured event log.
    trace: TraceBuffer,
}

impl Telemetry {
    /// A live handle: instruments record into a shared registry.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A live handle whose flight-recorder buffers hold at most `spans`
    /// spans and `events` events (see [`DEFAULT_SPAN_CAPACITY`]). Overflow
    /// is counted, never blocking.
    pub fn with_trace_capacity(spans: usize, events: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                trace: TraceBuffer::with_capacity(spans, events),
                ..Inner::default()
            })),
        }
    }

    /// A no-op handle: every instrument is inert and free.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) a named monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .counters
                        .lock()
                        .expect("counter registry poisoned")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Registers (or retrieves) a named gauge holding one `f64`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .gauges
                        .lock()
                        .expect("gauge registry poisoned")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Registers (or retrieves) a named wall-time histogram.
    pub fn duration(&self, name: &str) -> DurationHistogram {
        DurationHistogram::new(self.core(name, |inner| &inner.durations))
    }

    /// Registers (or retrieves) a named work-size histogram.
    pub fn value(&self, name: &str) -> ValueHistogram {
        ValueHistogram::new(self.core(name, |inner| &inner.values))
    }

    fn core(
        &self,
        name: &str,
        table: impl Fn(&Inner) -> &Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    ) -> Option<Arc<HistogramCore>> {
        self.inner.as_ref().map(|inner| {
            Arc::clone(
                table(inner)
                    .lock()
                    .expect("histogram registry poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        })
    }

    pub(crate) fn push_stage(&self, stats: StageStats) {
        if let Some(inner) = &self.inner {
            inner
                .stages
                .lock()
                .expect("stage registry poisoned")
                .push(stats);
        }
    }

    /// A consistent copy of every instrument's current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        snapshot::take(self.inner.as_deref())
    }
}

/// A monotonic counter. Increments are relaxed atomic adds; a disabled
/// counter is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A gauge holding the most recently set `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let snapshot = t.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.durations.is_empty());
    }

    #[test]
    fn counters_share_state_by_name() {
        let t = Telemetry::enabled();
        let a = t.counter("hits");
        let b = t.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(t.snapshot().counters["hits"], 3);
    }

    #[test]
    fn gauges_hold_last_value() {
        let t = Telemetry::enabled();
        let g = t.gauge("utilization");
        g.set(0.75);
        g.set(0.5);
        assert_eq!(t.snapshot().gauges["utilization"], 0.5);
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.counter("n").add(7);
        assert_eq!(t.snapshot().counters["n"], 7);
    }

    #[test]
    fn counter_adds_are_atomic_across_threads() {
        let t = Telemetry::enabled();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = t.counter("parallel");
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(t.snapshot().counters["parallel"], threads * per_thread);
    }
}
