//! Process-level tests of the `bench-diff` gate binary: exit codes and
//! stderr wording for regressions, missing required benches, and the
//! `--require` prefix scoping used by deliberately filtered bench runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bench_diff_exe() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_bench-diff"))
}

fn snapshot_json(entries: &[(&str, f64, f64)]) -> String {
    let benches: Vec<String> = entries
        .iter()
        .map(|(name, median, p95)| {
            format!(
                r#"{{"bench": "{name}", "median_ns": {median}, "p95_ns": {p95}, "iters": 100}}"#
            )
        })
        .collect();
    format!(
        r#"{{"version": 1, "host": "test", "benches": [{}]}}"#,
        benches.join(", ")
    )
}

fn write_snapshot(dir: &Path, name: &str, entries: &[(&str, f64, f64)]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, snapshot_json(entries)).expect("snapshot written");
    path
}

fn run_diff(baseline: &Path, new: &Path, extra: &[&str]) -> Output {
    Command::new(bench_diff_exe())
        .arg(baseline)
        .arg(new)
        .args(extra)
        .output()
        .expect("bench-diff runs")
}

#[test]
fn missing_baseline_bench_fails_loudly_and_names_the_bench() {
    let dir = std::env::temp_dir().join(format!("fp-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let baseline = write_snapshot(
        &dir,
        "base.json",
        &[
            ("wire_x/encode", 1000.0, 1050.0),
            ("span/enabled", 300.0, 310.0),
        ],
    );
    // The candidate dropped wire_x/encode entirely — e.g. the bench was
    // deleted, or a filter typo skipped it. Pre-fix this passed silently.
    let partial = write_snapshot(&dir, "partial.json", &[("span/enabled", 305.0, 315.0)]);

    let out = run_diff(&baseline, &partial, &[]);
    assert!(
        !out.status.success(),
        "a missing baseline bench must fail the default gate"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wire_x/encode"),
        "the missing bench must be named on stderr: {stderr}"
    );
    assert!(stderr.contains("missing"), "{stderr}");

    // A filtered run that declares its slice with --require passes when
    // its slice is fully covered...
    let out = run_diff(&baseline, &partial, &["--require", "span"]);
    assert!(
        out.status.success(),
        "span-scoped run covers every span bench; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // ...and still fails when the missing bench is inside the slice.
    let out = run_diff(&baseline, &partial, &["--require", "wire_"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("wire_x/encode"));

    // A complete candidate passes the strict default.
    let full = write_snapshot(
        &dir,
        "full.json",
        &[
            ("wire_x/encode", 1005.0, 1055.0),
            ("span/enabled", 305.0, 315.0),
        ],
    );
    let out = run_diff(&baseline, &full, &[]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn regressions_and_missing_benches_both_reported_in_one_run() {
    let dir = std::env::temp_dir().join(format!("fp-bench-diff-both-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let baseline = write_snapshot(
        &dir,
        "base.json",
        &[("a/fast", 1000.0, 1050.0), ("a/gone", 500.0, 510.0)],
    );
    let new = write_snapshot(&dir, "new.json", &[("a/fast", 2000.0, 2100.0)]);

    let out = run_diff(&baseline, &new, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("a/gone"), "{stderr}");
    assert!(stderr.contains("regression"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
