//! Sharded search must be *byte-identical* to the unsharded index.
//!
//! The sharded design's whole claim is exactness (DESIGN.md §5c): per-entry
//! stage-1 channel scores are shard-invariant, fusion runs once globally,
//! and the per-shard exact re-ranks merge under the same strict total
//! order. These tests pin that claim across shard counts (including more
//! shards than templates, so some shards are empty), gallery sizes not
//! divisible by S, and shortlist budgets from 0 through past the gallery
//! size — plus telemetry roll-up parity with an unsharded run.

use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardedIndex};
use fp_match::PairTableMatcher;
use proptest::prelude::*;
use rand::Rng;

fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5D]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            rng.gen::<f64>() * 0.5 + 0.5,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

fn second_capture(template: &Template, seed: u64) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5E]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in template.minutiae() {
        if rng.gen::<f64>() <= 0.08 {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                m.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
            ),
            m.direction
                .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.05)),
            m.kind,
            m.reliability,
        ));
    }
    let motion = RigidMotion::new(
        Direction::from_radians(fp_core::dist::normal(&mut rng, 0.0, 0.15)),
        Vector::new(
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
        ),
    );
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
        .transformed(&motion)
}

fn gallery(seed: u64, n: usize) -> Vec<Template> {
    (0..n)
        .map(|i| synthetic_template(seed * 1_000 + i as u64, 16 + (i * 7) % 16))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The central claim: for every shard count (1, 2, 3, and a 7 that
    /// exceeds small galleries, leaving shards empty), every budget
    /// (empty, single, partial, exact, and over-full), and gallery sizes
    /// that do not divide evenly, the sharded candidate list — ids AND
    /// scores, in order — equals the unsharded one; and at full budget
    /// both equal brute force.
    #[test]
    fn sharded_equals_unsharded_equals_brute_force(
        seed in 0u64..500,
        n in 1usize..15,
        probe_pick in 0usize..15,
    ) {
        let templates = gallery(seed, n);
        let probe = second_capture(&templates[probe_pick % n], seed ^ 0x51AD);
        let config = IndexConfig::default();

        let mut unsharded = CandidateIndex::with_config(PairTableMatcher::default(), config);
        unsharded.enroll_all(&templates);

        for s in [1usize, 2, 3, 7] {
            let mut sharded =
                ShardedIndex::with_config(PairTableMatcher::default(), config, s);
            sharded.enroll_all(&templates);
            prop_assert_eq!(sharded.len(), n);

            for budget in [0usize, 1, n / 2, n, n + 5] {
                let a = unsharded.search_with_budget(&probe, budget);
                let b = sharded.search_with_budget(&probe, budget);
                prop_assert_eq!(
                    a.candidates(),
                    b.candidates(),
                    "shards={} budget={} n={}",
                    s,
                    budget,
                    n
                );
                prop_assert_eq!(a.gallery_len(), b.gallery_len());
                prop_assert_eq!(a.pruned(), b.pruned());
            }

            // Full budget degenerates to exact brute force.
            let full = sharded.search_with_budget(&probe, n);
            let reference = unsharded.brute_force(&probe);
            prop_assert_eq!(full.candidates(), reference.candidates());
        }
    }

    /// Batch and sequential sharded enrollment assign the same global ids
    /// and build the same index.
    #[test]
    fn sharded_batch_and_sequential_enrollment_agree(
        seed in 0u64..200,
        n in 1usize..12,
        s in 1usize..5,
    ) {
        let templates = gallery(seed + 7_000, n);
        let probe = second_capture(&templates[0], seed ^ 0xBEEF);

        let mut batch = ShardedIndex::new(PairTableMatcher::default(), s);
        prop_assert_eq!(batch.enroll_all(&templates), 0);

        let mut sequential = ShardedIndex::new(PairTableMatcher::default(), s);
        for (g, t) in templates.iter().enumerate() {
            prop_assert_eq!(sequential.enroll(t), g as u32);
        }

        let a = batch.search(&probe);
        let b = sequential.search(&probe);
        prop_assert_eq!(a.candidates(), b.candidates());
    }
}

#[test]
fn empty_sharded_gallery_returns_empty_result() {
    let sharded: ShardedIndex<PairTableMatcher> = ShardedIndex::new(PairTableMatcher::default(), 4);
    assert!(sharded.is_empty());
    assert_eq!(sharded.shard_count(), 4);
    let probe = synthetic_template(1, 20);
    let result = sharded.search(&probe);
    assert!(result.candidates().is_empty());
    assert_eq!(result.gallery_len(), 0);
}

#[test]
#[should_panic(expected = "at least one shard")]
fn zero_shards_is_rejected() {
    let _ = ShardedIndex::new(PairTableMatcher::default(), 0);
}

/// Roll-up telemetry parity: a sharded run's `index.*` roll-up counters
/// must equal an unsharded run's on the same gallery and probes (the work
/// counters are pure functions of probe x entries, so sharding cannot
/// change them), and the per-shard `index.shard<k>.*` counters must sum to
/// the roll-up exactly.
#[test]
fn rollup_counters_match_unsharded_and_shards_partition_them() {
    const N: usize = 30;
    const S: usize = 3;
    let templates = gallery(42, N);
    let probes: Vec<Template> = (0..4)
        .map(|p| second_capture(&templates[p * 5], 9_000 + p as u64))
        .collect();

    let plain_tel = fp_telemetry::Telemetry::enabled();
    let mut plain = CandidateIndex::new(PairTableMatcher::default()).with_telemetry(&plain_tel);
    plain.enroll_all(&templates);

    let sharded_tel = fp_telemetry::Telemetry::enabled();
    let mut sharded =
        ShardedIndex::new(PairTableMatcher::default(), S).with_telemetry(&sharded_tel);
    sharded.enroll_all(&templates);

    for probe in &probes {
        assert_eq!(
            plain.search(probe).candidates(),
            sharded.search(probe).candidates()
        );
    }

    let a = plain_tel.snapshot();
    let b = sharded_tel.snapshot();
    // `index.searches` fans out (every shard serves every search) rather
    // than partitioning; it is checked per shard below.
    assert_eq!(a.counters["index.searches"], b.counters["index.searches"]);
    for key in [
        "index.enrolled",
        "index.search.hamming_ops",
        "index.search.bucket_hits",
        "index.search.rerank_comparisons",
        "index.search.candidates_pruned",
    ] {
        assert_eq!(a.counters[key], b.counters[key], "roll-up {key}");
        let shard_sum: u64 = (0..S)
            .map(|k| {
                let name = format!("index.shard{k}.{}", &key["index.".len()..]);
                b.counters.get(&name).copied().unwrap_or_else(|| {
                    panic!("missing per-shard counter {name}");
                })
            })
            .sum();
        assert_eq!(shard_sum, b.counters[key], "shard partition of {key}");
    }

    // Every shard served every search, and per-shard build histograms
    // carry one sample per locally enrolled template.
    for k in 0..S {
        assert_eq!(b.counters[&format!("index.shard{k}.searches")], 4);
        assert_eq!(
            b.durations[&format!("index.shard{k}.build.seconds")].count,
            (N / S) as u64
        );
        assert_eq!(
            b.durations[&format!("index.shard{k}.build.batch_seconds")].count,
            1
        );
        assert_eq!(
            b.durations[&format!("index.shard{k}.search.seconds")].count,
            4
        );
    }
    assert_eq!(b.durations["index.search.seconds"].count, 4);
    assert_eq!(b.durations["index.build.batch_seconds"].count, 1);
}

/// The sharded search's flight-recorder spans nest per-shard work under
/// the probe's `index.search` root.
#[test]
fn shard_spans_nest_under_the_search_span() {
    const S: usize = 2;
    let telemetry = fp_telemetry::Telemetry::enabled();
    let templates = gallery(77, 10);
    let mut sharded = ShardedIndex::new(PairTableMatcher::default(), S).with_telemetry(&telemetry);
    sharded.enroll_all(&templates);
    let probe = second_capture(&templates[3], 1_234);
    let _ = sharded.search(&probe);

    let trace = telemetry.trace_snapshot();
    trace.validate_tree().expect("well-formed trace");
    let search = trace
        .spans
        .iter()
        .find(|s| s.name == "index.search")
        .expect("search span recorded");
    for name in ["index.shard.search", "index.shard.rerank"] {
        let lanes: Vec<_> = trace.spans.iter().filter(|s| s.name == name).collect();
        assert_eq!(lanes.len(), S, "{name} once per shard");
        for lane in lanes {
            assert_eq!(lane.parent, Some(search.id), "{name} parented");
        }
    }
    let enroll = trace
        .spans
        .iter()
        .find(|s| s.name == "index.enroll_all")
        .expect("enroll span recorded");
    let enroll_lanes: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name == "index.shard.enroll")
        .collect();
    assert_eq!(enroll_lanes.len(), S);
    for lane in enroll_lanes {
        assert_eq!(lane.parent, Some(enroll.id));
    }
}

/// The transport-independent reference driver (`search_backends` over the
/// `ShardBackend` trait) produces the same bytes as both `ShardedIndex`
/// and the unsharded index: round-robin-dealt `CandidateIndex` backends
/// are exactly what a set of remote shard servers holds.
#[test]
fn backend_driver_matches_sharded_and_unsharded() {
    use fp_index::search_backends;

    const N: usize = 26;
    let templates = gallery(77, N);
    let config = IndexConfig::default();

    let mut unsharded = CandidateIndex::with_config(PairTableMatcher::default(), config);
    unsharded.enroll_all(&templates);

    for s in [1usize, 2, 3, 5] {
        // Deal templates round-robin into standalone per-shard indexes —
        // the same distribution ShardedIndex (and a remote coordinator)
        // uses.
        let mut backends: Vec<CandidateIndex<PairTableMatcher>> = (0..s)
            .map(|_| CandidateIndex::with_config(PairTableMatcher::default(), config))
            .collect();
        for (g, t) in templates.iter().enumerate() {
            backends[g % s].enroll(t);
        }

        let mut sharded = ShardedIndex::with_config(PairTableMatcher::default(), config, s);
        sharded.enroll_all(&templates);

        for p in [0usize, 7, 19] {
            let probe = second_capture(&templates[p], 4_400 + p as u64);
            for budget in [0usize, 1, N / 2, N, N + 3] {
                let via_trait = search_backends(&backends, &probe, budget).expect("in-process");
                let via_sharded = sharded.search_with_budget(&probe, budget);
                let via_plain = unsharded.search_with_budget(&probe, budget);
                assert_eq!(via_trait.candidates(), via_plain.candidates(), "s={s}");
                assert_eq!(via_trait.candidates(), via_sharded.candidates(), "s={s}");
                assert_eq!(via_trait.gallery_len(), N);
            }
        }
    }
}
