//! Master prints: the complete anatomical ground truth for one finger.

use rand::Rng;

use fp_core::dist;
use fp_core::geometry::{Direction, Point};
use fp_core::ids::Digit;
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;

use crate::field::OrientationField;
use crate::frequency::RidgeFrequencyMap;
use crate::pattern::PatternClass;
use crate::region::FingerRegion;

/// Target minutiae density on the ridge-bearing pad (per mm²). Forensic
/// literature reports 0.15–0.25 minutiae/mm² on adult fingers.
pub const MINUTIA_DENSITY_PER_MM2: f64 = 0.20;

/// Minimum separation between master minutiae (mm); real minutiae almost
/// never sit closer than about three ridge widths.
pub const MIN_MINUTIA_SPACING_MM: f64 = 1.35;

/// Fraction of minutiae that are ridge endings (the rest are bifurcations).
pub const ENDING_FRACTION: f64 = 0.55;

/// The full anatomical ground truth of a finger: pattern, ridge geometry, and
/// the master minutiae that every acquisition is a degraded view of.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterPrint {
    class: PatternClass,
    field: OrientationField,
    frequency: RidgeFrequencyMap,
    region: FingerRegion,
    minutiae: Vec<Minutia>,
}

impl MasterPrint {
    /// Generates the master print for one finger.
    ///
    /// `seed` must be unique per `(subject, finger)`; `size_factor` carries
    /// subject-level hand size (1.0 = average).
    pub fn generate(seed: &SeedTree, digit: Digit, size_factor: f64) -> Self {
        Self::generate_metered(
            seed,
            digit,
            size_factor,
            &crate::metrics::SynthMetrics::default(),
        )
    }

    /// [`MasterPrint::generate`] with telemetry: records the generation
    /// into `metrics` (master count, ground-truth minutiae count).
    pub fn generate_metered(
        seed: &SeedTree,
        digit: Digit,
        size_factor: f64,
        metrics: &crate::metrics::SynthMetrics,
    ) -> Self {
        let mut class_rng = seed.child(&[0]).rng();
        let class = PatternClass::sample(&mut class_rng);

        let mut field_rng = seed.child(&[1]).rng();
        let field = OrientationField::generate(class, &mut field_rng);

        let core = field
            .cores()
            .first()
            .copied()
            .unwrap_or(Point::new(0.0, 1.0));
        let mut freq_rng = seed.child(&[2]).rng();
        let frequency = RidgeFrequencyMap::generate(core, &mut freq_rng);

        let mut region_rng = seed.child(&[3]).rng();
        let region = FingerRegion::generate(digit, size_factor, &mut region_rng);

        let mut minutiae_rng = seed.child(&[4]).rng();
        let minutiae = sample_minutiae(&field, &region, &mut minutiae_rng);
        metrics.record_master(minutiae.len());

        MasterPrint {
            class,
            field,
            frequency,
            region,
            minutiae,
        }
    }

    /// The Henry pattern class.
    pub fn class(&self) -> PatternClass {
        self.class
    }

    /// The ridge orientation field.
    pub fn field(&self) -> &OrientationField {
        &self.field
    }

    /// The ridge frequency map.
    pub fn frequency(&self) -> &RidgeFrequencyMap {
        &self.frequency
    }

    /// The ridge-bearing pad region.
    pub fn region(&self) -> &FingerRegion {
        &self.region
    }

    /// The master minutiae (ground truth, before any acquisition
    /// degradation).
    pub fn minutiae(&self) -> &[Minutia] {
        &self.minutiae
    }
}

/// Poisson-disc (dart-throwing with grid acceleration) sampling of master
/// minutiae inside the pad, directions aligned with local ridge flow.
fn sample_minutiae<R: Rng + ?Sized>(
    field: &OrientationField,
    region: &FingerRegion,
    rng: &mut R,
) -> Vec<Minutia> {
    let target = (region.area_mm2() * MINUTIA_DENSITY_PER_MM2).round() as usize;
    let spacing = MIN_MINUTIA_SPACING_MM;
    let bb = region.bounding_box();
    let cell = spacing / std::f64::consts::SQRT_2;
    let cols = (bb.width() / cell).ceil() as usize + 1;
    let rows = (bb.height() / cell).ceil() as usize + 1;
    let mut grid: Vec<Option<Point>> = vec![None; cols * rows];
    let cell_of = |p: &Point| -> (usize, usize) {
        let cx = ((p.x - bb.min().x) / cell) as usize;
        let cy = ((p.y - bb.min().y) / cell) as usize;
        (cx.min(cols - 1), cy.min(rows - 1))
    };

    let mut accepted: Vec<Point> = Vec::with_capacity(target);
    let max_attempts = target * 40;
    let mut attempts = 0;
    while accepted.len() < target && attempts < max_attempts {
        attempts += 1;
        let cand = region.sample_point(rng);
        let (cx, cy) = cell_of(&cand);
        let mut ok = true;
        'scan: for gy in cy.saturating_sub(2)..=(cy + 2).min(rows - 1) {
            for gx in cx.saturating_sub(2)..=(cx + 2).min(cols - 1) {
                if let Some(existing) = grid[gy * cols + gx] {
                    if existing.distance(&cand) < spacing {
                        ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if ok {
            grid[cy * cols + cx] = Some(cand);
            accepted.push(cand);
        }
    }

    accepted
        .into_iter()
        .map(|pos| {
            let orient = field.orientation_at(pos);
            // Lift the undirected ridge orientation to a direction with a
            // random polarity — endings/bifurcations point either way along
            // the ridge in real prints.
            let flip = if rng.gen::<bool>() {
                std::f64::consts::PI
            } else {
                0.0
            };
            let direction = Direction::from_radians(orient.radians() + flip);
            let kind = if rng.gen::<f64>() < ENDING_FRACTION {
                MinutiaKind::RidgeEnding
            } else {
                MinutiaKind::Bifurcation
            };
            let reliability = dist::truncated_normal(rng, 0.95, 0.04, 0.75, 1.0);
            Minutia::new(pos, direction, kind, reliability)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master(seed: u64) -> MasterPrint {
        MasterPrint::generate(&SeedTree::new(seed), Digit::Index, 1.0)
    }

    #[test]
    fn minutiae_count_matches_density() {
        for seed in 0..8 {
            let m = master(seed);
            let expected = m.region().area_mm2() * MINUTIA_DENSITY_PER_MM2;
            let n = m.minutiae().len() as f64;
            assert!(
                (n - expected).abs() <= expected * 0.2 + 3.0,
                "seed {seed}: {n} minutiae, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn minutiae_respect_minimum_spacing() {
        let m = master(5);
        let pts = m.minutiae();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d = pts[i].distance(&pts[j]);
                assert!(
                    d >= MIN_MINUTIA_SPACING_MM - 1e-9,
                    "minutiae {i},{j} only {d} mm apart"
                );
            }
        }
    }

    #[test]
    fn minutiae_lie_on_the_pad() {
        let m = master(2);
        for minutia in m.minutiae() {
            assert!(m.region().contains(&minutia.pos));
        }
    }

    #[test]
    fn minutia_directions_follow_ridge_flow() {
        let m = master(7);
        for minutia in m.minutiae() {
            let flow = m.field().orientation_at(minutia.pos);
            let sep = minutia.direction.to_orientation().separation(flow);
            assert!(sep < 1e-9, "direction deviates from flow by {sep}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = master(9);
        let b = master(9);
        assert_eq!(a.minutiae(), b.minutiae());
        assert_eq!(a.class(), b.class());
    }

    #[test]
    fn different_fingers_are_different() {
        let a = master(1);
        let b = master(2);
        assert_ne!(a.minutiae(), b.minutiae());
    }

    #[test]
    fn both_minutia_kinds_occur() {
        let m = master(11);
        let endings = m
            .minutiae()
            .iter()
            .filter(|x| x.kind == MinutiaKind::RidgeEnding)
            .count();
        assert!(endings > 0 && endings < m.minutiae().len());
    }
}
