//! # fp-index
//!
//! Candidate indexing for 1:N identification at full-cohort scale.
//!
//! The study's identification experiments must search a probe against every
//! enrolled subject. Brute force is O(gallery) exact comparisons per probe —
//! the scaling wall that capped the original closed-set experiment at 150 of
//! the 494 subjects. This crate removes the wall with a classic two-stage
//! design:
//!
//! 1. **Shortlist (cheap, approximate).** Two independent feature channels,
//!    both derived from structures `fp-match` already computes:
//!    * **per-minutia binarized-MCC cylinder codes** — each reliable
//!      minutia's cylinder is binarized at its own mean into a packed `u64`
//!      code, and templates are compared by local similarity sort over
//!      per-cylinder Hamming matches ([`CylinderCodes`]);
//!    * a **pair-table geometric hash** — every gallery pair-table entry is
//!      registered under its quantized `(distance, beta1, beta2)` key, and a
//!      probe accumulates compatibility votes by bucket lookup, never
//!      touching individual gallery templates.
//!
//!    Each channel ranks the gallery independently; best-rank fusion
//!    (an entry's fused key is the better of its two channel ranks) selects
//!    the top-K shortlist, so a genuine mate only needs to surface in one
//!    channel. Both channels are deliberately robust to the study's hardest
//!    probe device — ink-card scans whose spurious extra minutiae would
//!    drown any pooled whole-template descriptor or max-normalized vote.
//! 2. **Re-rank (exact).** The shortlist is scored with the wrapped
//!    matcher's [`fp_match::PreparableMatcher::compare_prepared`], so every
//!    reported score equals what brute force would produce. With
//!    `shortlist >= gallery` the result is *identical* to brute force — the
//!    exactness property the test harness pins down.
//!
//! Recall is the only approximation: a genuine mate can fail to make the
//! shortlist. The property tests require shortlist recall ≥ 0.98 at the
//! default budget on seeded data; `study ext-scaling` reports it per run.
//!
//! For large galleries, [`ShardedIndex`] splits the gallery round-robin
//! across S thread-parallel shards and merges per-shard results
//! deterministically — byte-identical to the unsharded index at the same
//! total budget (per-entry stage-1 scores are shard-invariant; fusion runs
//! once, globally — see `shard.rs` for the argument), with both stages
//! fanning out across shard threads. The seam itself is named by the
//! [`ShardBackend`] trait (`backend.rs`): anything that can answer stage-1
//! scores and stage-2 exact scores for its slice of the gallery — an
//! in-process [`CandidateIndex`] or `fp-serve`'s remote shard connection —
//! plugs into the same fusion/merge code and produces the same bytes.
//!
//! ```
//! use fp_index::{CandidateIndex, IndexConfig};
//! use fp_match::PairTableMatcher;
//! use fp_core::template::Template;
//!
//! # fn main() -> Result<(), fp_core::Error> {
//! let mut index = CandidateIndex::new(PairTableMatcher::default());
//! let empty = Template::builder(500.0).build()?;
//! index.enroll(&empty);
//! let result = index.search(&empty);
//! assert_eq!(result.gallery_len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod backend;
pub mod config;
pub mod geohash;
pub mod index;
pub mod metrics;
pub mod shard;
pub mod signature;

pub use arena::CodeArena;
pub use backend::{search_backends, ShardBackend, ShardError};
pub use config::{IndexConfig, IndexConfigError};
pub use geohash::FlatBuckets;
pub use index::{Candidate, CandidateIndex, SearchResult, StageOneScores, TableLoader};
pub use metrics::IndexMetrics;
pub use shard::ShardedIndex;
pub use signature::{CodeView, CylinderCodes, Stage1Scratch};
