//! Pre-registered telemetry instruments for the candidate index.
//!
//! Mirrors the matcher-metrics pattern in `fp-match`: one bundle of
//! counters and histograms registered via `with_telemetry`, every record a
//! relaxed atomic op, and the `Default` bundle fully inert. Counters and
//! work-size histograms measure *work* (pure functions of the enrolled
//! templates and probes, identical across same-seed runs); the duration
//! histograms measure wall time and vary with the machine.
//!
//! A [`crate::ShardedIndex`] registers one bundle per shard under an
//! `index.shard<k>` prefix plus an unprefixed `index` roll-up bundle, so
//! per-shard work is attributable while the roll-up stays comparable with
//! an unsharded [`crate::CandidateIndex`] serving the same gallery.

use fp_telemetry::{Counter, DurationHistogram, Telemetry, ValueHistogram};

/// Instruments for [`crate::CandidateIndex`].
#[derive(Debug, Clone, Default)]
pub struct IndexMetrics {
    /// `index.enrolled` — gallery templates enrolled.
    pub(crate) enrolled: Counter,
    /// `index.searches` — 1:N searches served.
    pub(crate) searches: Counter,
    /// `index.search.hamming_ops` — packed-`u64` Hamming word comparisons
    /// performed inside [`crate::CylinderCodes::similarity`] (the full
    /// cylinder-pair x word fan-out, not one op per gallery entry).
    pub(crate) hamming_ops: Counter,
    /// `index.search.bucket_hits` — geometric-hash vote increments.
    pub(crate) bucket_hits: Counter,
    /// `index.search.rerank_comparisons` — exact matcher comparisons spent
    /// re-ranking shortlists.
    pub(crate) rerank_comparisons: Counter,
    /// `index.search.candidates_pruned` — gallery entries excluded from
    /// exact re-ranking by the prefilter stages.
    pub(crate) candidates_pruned: Counter,
    /// `index.search.shortlist` — shortlist length per search.
    pub(crate) shortlist: ValueHistogram,
    /// `index.search.hamming_ops_per_search` — stage-1 Hamming word
    /// comparisons per probe. The global counter hides outliers; this
    /// distribution shows when one probe paid far more than the median.
    pub(crate) hamming_per_search: ValueHistogram,
    /// `index.search.bucket_hits_per_search` — geometric-hash vote
    /// increments per probe (shortlist-quality outliers per search).
    pub(crate) bucket_hits_per_search: ValueHistogram,
    /// `index.build.seconds` — wall time per enrolled template, in both the
    /// sequential and the batch path (the batch path records each
    /// template's preparation time individually, so percentiles are not
    /// skewed by whole-batch samples).
    pub(crate) build_time: DurationHistogram,
    /// `index.build.batch_seconds` — wall time of each whole
    /// `enroll_all` batch.
    pub(crate) build_batch_time: DurationHistogram,
    /// `index.search.seconds` — wall time per search.
    pub(crate) search_time: DurationHistogram,
    /// Handle for flight-recorder spans around enroll/search batches.
    pub(crate) telemetry: Telemetry,
}

impl IndexMetrics {
    /// Registers the index instruments on `telemetry` under the canonical
    /// `index` prefix.
    pub fn new(telemetry: &Telemetry) -> IndexMetrics {
        IndexMetrics::with_prefix(telemetry, "index")
    }

    /// Registers the instruments under an explicit name prefix
    /// (`<prefix>.searches`, `<prefix>.search.hamming_ops`, ...). Sharded
    /// galleries use `index.shard<k>` so every shard's work is separately
    /// attributable.
    pub fn with_prefix(telemetry: &Telemetry, prefix: &str) -> IndexMetrics {
        IndexMetrics {
            enrolled: telemetry.counter(&format!("{prefix}.enrolled")),
            searches: telemetry.counter(&format!("{prefix}.searches")),
            hamming_ops: telemetry.counter(&format!("{prefix}.search.hamming_ops")),
            bucket_hits: telemetry.counter(&format!("{prefix}.search.bucket_hits")),
            rerank_comparisons: telemetry.counter(&format!("{prefix}.search.rerank_comparisons")),
            candidates_pruned: telemetry.counter(&format!("{prefix}.search.candidates_pruned")),
            shortlist: telemetry.value(&format!("{prefix}.search.shortlist")),
            hamming_per_search: telemetry.value(&format!("{prefix}.search.hamming_ops_per_search")),
            bucket_hits_per_search: telemetry
                .value(&format!("{prefix}.search.bucket_hits_per_search")),
            build_time: telemetry.duration(&format!("{prefix}.build.seconds")),
            build_batch_time: telemetry.duration(&format!("{prefix}.build.batch_seconds")),
            search_time: telemetry.duration(&format!("{prefix}.search.seconds")),
            telemetry: telemetry.clone(),
        }
    }
}
