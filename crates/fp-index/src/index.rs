//! The two-stage candidate index.

use std::time::Instant;

use fp_core::template::Template;
use fp_core::MatchScore;
use fp_match::{MccMatcher, PairTableMatcher, PreparableMatcher};
use fp_telemetry::{
    FingerprintChain, FingerprintSnapshot, Fingerprinted, RunFingerprint, Telemetry,
};

use crate::arena::CodeArena;
use crate::config::{IndexConfig, IndexConfigError};
use crate::geohash::BucketIndex;
use crate::metrics::IndexMetrics;
use crate::signature::{CylinderCodes, Stage1Scratch};

/// One enrolled gallery template. The entry's binarized cylinder codes do
/// not live here: they are packed into the index's shared [`CodeArena`]
/// at the same dense id, so stage-1 streams one contiguous slab instead of
/// chasing per-entry allocations.
#[derive(Debug, Clone)]
struct GalleryEntry<P> {
    prepared: TableSlot<P>,
    pair_count: u32,
}

/// An entry's prepared stage-2 structure: either materialized (enrollment
/// and eager store opens) or a slot the index's [`TableLoader`] fills on
/// first stage-2 touch (lazy store opens). Only shortlisted entries are
/// ever re-ranked, so a lazily opened gallery decodes a handful of tables
/// per search instead of all of them at open — the decoded value is
/// bit-identical either way, so searches are too.
#[derive(Debug, Clone)]
enum TableSlot<P> {
    Ready(P),
    Lazy(std::sync::OnceLock<P>),
}

/// Demand-loader for lazy entries: maps a dense gallery id to its prepared
/// stage-2 structure (`fp-store` slices, checksums, and decodes the
/// entry's table record from the open segment file). Must be pure — the
/// value is cached in the entry's slot and must equal what eager
/// enrollment would have produced, bit for bit.
pub struct TableLoader<P>(std::sync::Arc<dyn Fn(u32) -> P + Send + Sync>);

impl<P> TableLoader<P> {
    /// Wraps a demand-load function.
    pub fn new(load: impl Fn(u32) -> P + Send + Sync + 'static) -> TableLoader<P> {
        TableLoader(std::sync::Arc::new(load))
    }
}

impl<P> Clone for TableLoader<P> {
    fn clone(&self) -> Self {
        TableLoader(self.0.clone())
    }
}

impl<P> std::fmt::Debug for TableLoader<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TableLoader")
    }
}

/// Everything one template contributes at enrollment, prepared off the
/// index (possibly on a worker thread) and committed by `insert` in id
/// order: the entry itself, its geometric-hash pair features, and the
/// cylinder codes destined for the arena.
struct PreparedEnrollment<P> {
    entry: GalleryEntry<P>,
    features: Vec<fp_match::PairFeature>,
    codes: CylinderCodes,
}

/// One exactly-scored candidate of a search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The gallery id assigned at enrollment (dense, in enrollment order).
    pub id: u32,
    /// The exact matcher score against the probe.
    pub score: MatchScore,
}

impl Fingerprinted for Candidate {
    /// `(id, score)` — the score as raw `f64` bits, so a single flipped
    /// mantissa bit changes the fingerprint.
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(u64::from(self.id));
        chain.fold_f64(self.score.value());
    }
}

/// The outcome of one 1:N search: the shortlist, re-ranked exactly.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Shortlisted candidates, sorted by exact score descending (ties by id
    /// ascending, so results are fully deterministic).
    candidates: Vec<Candidate>,
    gallery_len: usize,
}

impl SearchResult {
    /// Assembles a result from an already-sorted candidate list (used by
    /// the sharded and cross-process merges, which produce the same
    /// `(score desc, id asc)` order by construction — callers are
    /// responsible for that invariant).
    pub fn from_parts(candidates: Vec<Candidate>, gallery_len: usize) -> SearchResult {
        SearchResult {
            candidates,
            gallery_len,
        }
    }

    /// The re-ranked shortlist, best candidate first.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The best candidate, if the gallery was non-empty.
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }

    /// Number of gallery entries at search time.
    pub fn gallery_len(&self) -> usize {
        self.gallery_len
    }

    /// Number of gallery entries the prefilter excluded from exact scoring.
    pub fn pruned(&self) -> usize {
        self.gallery_len - self.candidates.len()
    }

    /// Rank of gallery entry `id` among the exactly-scored candidates,
    /// 1-based, with the same pessimistic tie handling as
    /// `fp_stats::cmc::genuine_rank` (tied impostors rank ahead). `None`
    /// when `id` did not make the shortlist — an identification miss.
    pub fn genuine_rank(&self, id: u32) -> Option<usize> {
        let own = self
            .candidates
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.score)?;
        Some(
            1 + self
                .candidates
                .iter()
                .filter(|c| c.id != id && c.score >= own)
                .count(),
        )
    }
}

impl Fingerprinted for SearchResult {
    /// The canonical per-search fold: gallery size, shortlist length, then
    /// every candidate as `(id, score bits, rank)` in global-fusion order
    /// (score desc, id asc). Sharded and unsharded searches produce the
    /// same merged list, so they fold identically.
    fn fold_into(&self, chain: &mut FingerprintChain) {
        chain.fold_u64(self.gallery_len as u64);
        chain.fold_u64(self.candidates.len() as u64);
        for (rank, candidate) in self.candidates.iter().enumerate() {
            candidate.fold_into(chain);
            chain.fold_u64(rank as u64);
        }
    }
}

/// The probe-side features of one search, computed once per probe: the
/// prepared pair table (for geometric-hash voting) and the binarized
/// cylinder codes. A [`crate::ShardedIndex`] computes this once and shares
/// it read-only across every shard's stage-1 pass — the features depend
/// only on the probe and the (shard-invariant) extraction config, so every
/// shard sees bit-identical probe features.
pub(crate) struct ProbeFeatures {
    table: <PairTableMatcher as PreparableMatcher>::Prepared,
    pairs: u32,
    codes: CylinderCodes,
}

/// Per-entry stage-1 channel scores over one (sub)gallery, plus the work
/// the pass performed. Both score vectors are *pure per-entry functions* of
/// (probe, entry): an entry's vote score counts only its own registered
/// pair features against the probe, and its code score compares only its
/// own cylinders — neither depends on which other entries share the
/// gallery. This is the property that makes sharded search exact: scores
/// computed shard-locally are bit-identical to the unsharded ones —
/// whether the shard lives in this process ([`crate::ShardedIndex`]) or
/// answers over `fp-serve`'s wire protocol, which is why this struct is
/// public: it *is* the cross-process score seam.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOneScores {
    /// Min-support-normalized geometric-hash votes per entry.
    pub vote_scores: Vec<f64>,
    /// Local-similarity-sort cylinder-code score per entry.
    pub cyl_scores: Vec<f64>,
    /// Geometric-hash vote increments performed.
    pub bucket_hits: u64,
    /// Packed-`u64` Hamming word comparisons performed.
    pub hamming_word_ops: u64,
}

/// A two-stage candidate index for 1:N identification.
///
/// **Stage 1 (shortlist):** every gallery template is summarized at
/// enrollment into (a) per-minutia binarized-MCC cylinder codes, compared by
/// local-similarity-sort over packed `u64` Hamming words, and (b) its
/// pair-table features, registered in a geometric-hash bucket index that
/// lets a probe accumulate compatibility votes without touching individual
/// gallery templates. Each channel ranks the gallery independently and the
/// two rankings are fused by *best rank* — an entry's fused key is the
/// better of its two channel ranks — so a genuine mate only needs to
/// surface in one channel. The top-K fused entries survive.
///
/// **Stage 2 (re-rank):** the shortlist is scored *exactly* with the wrapped
/// matcher's [`PreparableMatcher::compare_prepared`], so every score the
/// index reports is identical to what a brute-force scan would have
/// produced for that candidate; with `shortlist >= gallery` the whole
/// result is identical to brute force.
#[derive(Debug, Clone)]
pub struct CandidateIndex<M: PreparableMatcher> {
    matcher: M,
    features: PairTableMatcher,
    mcc: MccMatcher,
    config: IndexConfig,
    entries: Vec<GalleryEntry<M::Prepared>>,
    /// Fills lazy entry slots on first stage-2 touch; `None` on indexes
    /// whose entries are all materialized.
    loader: Option<TableLoader<M::Prepared>>,
    /// Every enrolled entry's packed cylinder codes, structure-of-arrays,
    /// indexed by the same dense ids as `entries`.
    arena: CodeArena,
    buckets: BucketIndex,
    metrics: IndexMetrics,
    /// Canonical run fingerprint: folds every [`search`](Self::search)'s
    /// merged candidate list. Clones of the index share it.
    runfp: RunFingerprint,
    /// Stage-2 part fingerprint: folds the candidate parts this index
    /// serves as a *shard backend* (`ShardBackend::stage_two`), in
    /// selection order with shard-local ids — the chain a coordinator
    /// mirrors and verifies over the wire.
    part_fp: RunFingerprint,
}

impl<M: PreparableMatcher> CandidateIndex<M> {
    /// Creates an empty index around `matcher` with the default config.
    pub fn new(matcher: M) -> CandidateIndex<M> {
        CandidateIndex::with_config(matcher, IndexConfig::default())
    }

    /// Creates an empty index with an explicit config.
    ///
    /// # Panics
    ///
    /// If `config` is structurally invalid (see
    /// [`IndexConfig::validate`]); use
    /// [`try_with_config`](Self::try_with_config) to handle that as a
    /// typed error instead (boundaries adopting untrusted configs — e.g.
    /// `fp-serve`'s wire enroll — do).
    pub fn with_config(matcher: M, config: IndexConfig) -> CandidateIndex<M> {
        match CandidateIndex::try_with_config(matcher, config) {
            Ok(index) => index,
            Err(err) => panic!("invalid IndexConfig: {err}"),
        }
    }

    /// Creates an empty index with an explicit config, rejecting invalid
    /// configs with a typed error.
    pub fn try_with_config(
        matcher: M,
        config: IndexConfig,
    ) -> Result<CandidateIndex<M>, IndexConfigError> {
        config.validate()?;
        Ok(CandidateIndex {
            matcher,
            features: PairTableMatcher::default(),
            mcc: MccMatcher::default(),
            config,
            entries: Vec::new(),
            loader: None,
            arena: CodeArena::new(),
            buckets: BucketIndex::new(config.distance_bin, config.angle_bins),
            metrics: IndexMetrics::default(),
            runfp: RunFingerprint::new(config.fingerprint_base(0)),
            part_fp: RunFingerprint::new(config.fingerprint_base(0)),
        })
    }

    /// Re-seeds the canonical run fingerprint (default seed 0). Call
    /// before the first search: the cumulative chain restarts from the
    /// new `(seed, config)` base. The stage-2 part chain keeps seed 0 —
    /// it must match a coordinator's mirror, which has no run seed.
    pub fn with_run_seed(mut self, seed: u64) -> Self {
        self.runfp = RunFingerprint::new(self.config.fingerprint_base(seed));
        self
    }

    /// Snapshot of the canonical run fingerprint: `(seed, config)` plus
    /// every search's merged candidate list, combined commutatively (so
    /// concurrent searches reach a thread-order-independent value).
    pub fn run_fingerprint(&self) -> FingerprintSnapshot {
        self.runfp.snapshot()
    }

    /// Snapshot of the stage-2 part chain this index accumulated while
    /// serving as a shard backend.
    pub fn part_fingerprint(&self) -> FingerprintSnapshot {
        self.part_fp.snapshot()
    }

    /// Folds one served stage-2 part (shard-local ids, selection order)
    /// into the part chain. Called by the `ShardBackend` impl and by
    /// `ShardedIndex`'s per-shard re-rank lane, so in-process and remote
    /// shards fold bit-identical sequences.
    pub(crate) fn fold_part(&self, part: &[Candidate]) {
        let mut chain = self.part_fp.begin();
        chain.fold(part);
        self.part_fp.record(&chain);
    }

    /// Registers the index's work counters and timing histograms on
    /// `telemetry` (candidates pruned, Hamming word ops, bucket hits,
    /// re-rank comparisons, build/search wall time).
    pub fn with_telemetry(self, telemetry: &Telemetry) -> Self {
        self.with_metrics(IndexMetrics::new(telemetry))
    }

    /// Installs a pre-registered instrument bundle (the sharded index uses
    /// this to give every shard its own `index.shard<k>` label prefix).
    pub(crate) fn with_metrics(mut self, metrics: IndexMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The installed instrument bundle.
    pub(crate) fn metrics(&self) -> &IndexMetrics {
        &self.metrics
    }

    /// The active configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The wrapped exact matcher.
    pub fn matcher(&self) -> &M {
        &self.matcher
    }

    /// Number of enrolled gallery templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the gallery is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn make_entry(&self, template: &Template) -> PreparedEnrollment<M::Prepared> {
        let table = self.features.prepare(template);
        let features: Vec<_> = table.pair_features().collect();
        let codes = CylinderCodes::extract(&self.mcc, template, self.config.max_cylinders);
        PreparedEnrollment {
            entry: GalleryEntry {
                prepared: TableSlot::Ready(self.matcher.prepare(template)),
                pair_count: features.len() as u32,
            },
            features,
            codes,
        }
    }

    /// The prepared stage-2 structure of gallery entry `id`, demand-loading
    /// (and caching) it through the table loader if the entry is lazy.
    ///
    /// # Panics
    ///
    /// If a lazy entry exists without a loader — impossible through the
    /// public constructors ([`from_store_parts_lazy`]
    /// (Self::from_store_parts_lazy) is the only source of lazy slots and
    /// always installs one).
    fn prepared(&self, id: u32) -> &M::Prepared {
        match &self.entries[id as usize].prepared {
            TableSlot::Ready(p) => p,
            TableSlot::Lazy(slot) => slot.get_or_init(|| {
                let loader = self
                    .loader
                    .as_ref()
                    .expect("lazy gallery entry without a table loader");
                (loader.0)(id)
            }),
        }
    }

    fn insert(&mut self, prepared: PreparedEnrollment<M::Prepared>) -> u32 {
        let id = self.entries.len() as u32;
        self.buckets.insert(id, prepared.features.into_iter());
        self.arena.push(&prepared.codes);
        self.entries.push(prepared.entry);
        self.metrics.enrolled.incr();
        id
    }

    /// Enrolls one gallery template, returning its dense id (enrollment
    /// order, starting at 0).
    pub fn enroll(&mut self, template: &Template) -> u32 {
        let start = Instant::now();
        let prepared = self.make_entry(template);
        let id = self.insert(prepared);
        self.metrics.build_time.record(start.elapsed());
        id
    }

    /// Enrolls a batch, preparing templates in parallel across the
    /// machine's cores (ids are still assigned in slice order, and the
    /// resulting index is identical to sequential [`enroll`](Self::enroll)
    /// calls). Returns the id of the first enrolled template.
    pub fn enroll_all(&mut self, templates: &[Template]) -> u32
    where
        M: Sync,
        M::Prepared: Send,
    {
        let _span = self.metrics.telemetry.trace_span(
            "index.enroll_all",
            &[("batch", templates.len().to_string())],
        );
        let refs: Vec<&Template> = templates.iter().collect();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        self.enroll_all_bounded(&refs, threads)
    }

    /// [`enroll_all`](Self::enroll_all) over template references with an
    /// explicit worker-thread budget. The sharded index divides the
    /// machine's cores across shards through this path so S shards
    /// enrolling concurrently do not oversubscribe S x cores.
    pub(crate) fn enroll_all_bounded(&mut self, templates: &[&Template], threads: usize) -> u32
    where
        M: Sync,
        M::Prepared: Send,
    {
        let start = Instant::now();
        let first = self.entries.len() as u32;
        let prepared = parallel_make(self, templates, threads);
        for enrollment in prepared {
            self.insert(enrollment);
        }
        // Per-template preparation timings were recorded inside
        // `parallel_make`; the whole-batch wall time gets its own
        // histogram so build-time percentiles are not skewed by mixing
        // batch samples in with per-template ones.
        self.metrics.build_batch_time.record(start.elapsed());
        first
    }

    /// Computes the probe-side features (prepared pair table + cylinder
    /// codes) once for a search.
    pub(crate) fn probe_features(&self, probe: &Template) -> ProbeFeatures {
        let table = self.features.prepare(probe);
        let pairs = table.len() as u32;
        let codes = CylinderCodes::extract(&self.mcc, probe, self.config.max_cylinders);
        ProbeFeatures {
            table,
            pairs,
            codes,
        }
    }

    /// Stage 1: per-entry channel scores over this index's gallery.
    ///
    /// **Votes:** geometric-hash votes, normalized by the *smaller* pair
    /// count of the two templates (min-support). Card-scan probes carry
    /// ~2.5x more (mostly spurious) pairs than their live-scan gallery
    /// mates; dividing by the larger count would bury exactly those genuine
    /// matches.
    ///
    /// **Codes:** per-minutia cylinder codes scored by local similarity
    /// sort — robust to the same spurious-minutiae asymmetry because only
    /// the strongest local agreements count.
    pub(crate) fn stage1(&self, probe: &ProbeFeatures) -> StageOneScores {
        let n = self.entries.len();
        let mut votes = vec![0u32; n];
        let bucket_hits = self
            .buckets
            .accumulate(probe.table.pair_features(), &mut votes);
        let vote_scores: Vec<f64> = self
            .entries
            .iter()
            .enumerate()
            .map(|(id, entry)| {
                f64::from(votes[id]) / f64::from(probe.pairs.min(entry.pair_count).max(1))
            })
            .collect();

        // The cache-blocked arena kernel. Byte-identical to scoring each
        // entry with `CylinderCodes::similarity_counted` (the scalar
        // reference) — `tests/kernel.rs` and `study check-kernel` pin the
        // equivalence — including the exact `hamming_word_ops` count.
        let mut scratch = Stage1Scratch::new();
        let mut cyl_scores = vec![0.0f64; n];
        let hamming_word_ops = self.arena.score_into(
            &probe.codes,
            self.config.lss_depth,
            &mut scratch,
            &mut cyl_scores,
        );

        StageOneScores {
            vote_scores,
            cyl_scores,
            bucket_hits,
            hamming_word_ops,
        }
    }

    /// The packed code arena backing stage-1 (read-only).
    pub fn arena(&self) -> &CodeArena {
        &self.arena
    }

    /// Persistence view of the gallery: every entry's prepared matcher
    /// structure plus its pair-feature count (the vote-normalization
    /// denominator, counted from the index's own feature extractor — not
    /// derivable from `M::Prepared` in general), in dense-id order.
    /// Together with [`arena`](Self::arena)'s raw parts and
    /// [`store_buckets`](Self::store_buckets) this is the complete state
    /// `fp-store` writes into a segment — per-entry scores are pure
    /// functions of (probe, entry, config), so an index rebuilt from these
    /// parts searches byte-identically.
    pub fn store_entries(&self) -> impl Iterator<Item = (&M::Prepared, u32)> + '_ {
        // `prepared(id)` so saving a lazily opened index forces the
        // remaining table loads — persistence always sees full entries.
        (0..self.entries.len() as u32)
            .map(|id| (self.prepared(id), self.entries[id as usize].pair_count))
    }

    /// Persistence view of the geometric-hash table: `(key, ids)` buckets
    /// sorted by key ascending, ids in insertion (ascending gallery id)
    /// order — a canonical order, so save → open → save is byte-stable.
    pub fn store_buckets(&self) -> Vec<(u64, Vec<u32>)> {
        self.buckets.dump_sorted()
    }

    /// Reassembles an index from persisted parts — the open path of
    /// `fp-store`'s segment format. `entries` pairs each prepared matcher
    /// structure with its pair-feature count in dense-id order; `arena`
    /// and `buckets` must describe the same entries (the arena packs one
    /// span per entry, bucket ids are dense gallery ids). The result is
    /// indistinguishable from an index grown by [`enroll`](Self::enroll)
    /// calls in the same order: same candidate lists, same RUNFP chain.
    ///
    /// # Panics
    ///
    /// If `arena.len() != entries.len()`. Callers are responsible for
    /// validating untrusted inputs *before* this point (`fp-store` rejects
    /// hostile segments with typed errors during decode); this assert is a
    /// last-line programming-error check, not an input-validation surface
    /// — bucket ids out of range are likewise the caller's contract.
    pub fn from_store_parts(
        matcher: M,
        config: IndexConfig,
        entries: Vec<(M::Prepared, u32)>,
        arena: CodeArena,
        buckets: impl IntoIterator<Item = (u64, Vec<u32>)>,
    ) -> Result<CandidateIndex<M>, IndexConfigError> {
        let mut index = CandidateIndex::try_with_config(matcher, config)?;
        assert_eq!(
            arena.len(),
            entries.len(),
            "arena must pack exactly one span per entry"
        );
        index.entries = entries
            .into_iter()
            .map(|(prepared, pair_count)| GalleryEntry {
                prepared: TableSlot::Ready(prepared),
                pair_count,
            })
            .collect();
        index.arena = arena;
        index.buckets =
            BucketIndex::from_sorted_parts(config.distance_bin, config.angle_bins, buckets);
        index.metrics.enrolled.add(index.entries.len() as u64);
        Ok(index)
    }

    /// [`from_store_parts`](Self::from_store_parts) with **lazy** stage-2
    /// tables: instead of materialized prepared structures, each entry
    /// gets an empty slot plus its pair-feature count (stage-1 needs the
    /// counts for every entry on every search), and `loader` fills a slot
    /// the first time stage-2 touches that entry. Since only shortlisted
    /// entries are ever re-ranked, opening a persisted gallery this way
    /// skips decoding the dominant share of its bytes — while searches
    /// stay bit-identical, because the loader must return exactly what
    /// eager enrollment produced. Buckets arrive in the flat persisted
    /// shape and are adopted without reshuffling.
    ///
    /// # Panics
    ///
    /// If `arena.len() != pair_counts.len()` — same last-line check as
    /// [`from_store_parts`](Self::from_store_parts).
    pub fn from_store_parts_lazy(
        matcher: M,
        config: IndexConfig,
        pair_counts: Vec<u32>,
        loader: TableLoader<M::Prepared>,
        arena: CodeArena,
        buckets: crate::geohash::FlatBuckets,
    ) -> Result<CandidateIndex<M>, IndexConfigError> {
        let mut index = CandidateIndex::try_with_config(matcher, config)?;
        assert_eq!(
            arena.len(),
            pair_counts.len(),
            "arena must pack exactly one span per entry"
        );
        index.entries = pair_counts
            .into_iter()
            .map(|pair_count| GalleryEntry {
                prepared: TableSlot::Lazy(std::sync::OnceLock::new()),
                pair_count,
            })
            .collect();
        index.loader = Some(loader);
        index.arena = arena;
        index.buckets =
            BucketIndex::from_flat_parts(config.distance_bin, config.angle_bins, buckets);
        index.metrics.enrolled.add(index.entries.len() as u64);
        Ok(index)
    }

    /// Stage-1 cylinder-code scores of `probe` against every enrolled
    /// entry via the **blocked arena kernel** — `(per-entry scores,
    /// hamming word ops)`. Public for the kernel parity gate
    /// (`study check-kernel`) and the stage-1 benches; not metered.
    pub fn stage1_cylinder_scores(&self, probe: &Template) -> (Vec<f64>, u64) {
        let codes = CylinderCodes::extract(&self.mcc, probe, self.config.max_cylinders);
        let mut scratch = Stage1Scratch::new();
        let mut scores = vec![0.0f64; self.entries.len()];
        let ops = self
            .arena
            .score_into(&codes, self.config.lss_depth, &mut scratch, &mut scores);
        (scores, ops)
    }

    /// Same scores via the **scalar reference kernel**
    /// (entry-at-a-time [`CylinderCodes::similarity_counted`] semantics).
    /// The parity gate holds this bitwise equal to
    /// [`stage1_cylinder_scores`](Self::stage1_cylinder_scores).
    pub fn stage1_cylinder_scores_reference(&self, probe: &Template) -> (Vec<f64>, u64) {
        let codes = CylinderCodes::extract(&self.mcc, probe, self.config.max_cylinders);
        let mut scratch = Stage1Scratch::new();
        let mut scores = vec![0.0f64; self.entries.len()];
        let ops = self.arena.score_into_reference(
            &codes,
            self.config.lss_depth,
            &mut scratch,
            &mut scores,
        );
        (scores, ops)
    }

    /// Stage 2: exact scores for the selected entry ids (local ids of this
    /// index), in selection order — callers sort.
    pub(crate) fn rerank(&self, selected: &[u32], probe_prepared: &M::Prepared) -> Vec<Candidate> {
        selected
            .iter()
            .map(|&id| Candidate {
                id,
                score: self
                    .matcher
                    .compare_prepared(self.prepared(id), probe_prepared),
            })
            .collect()
    }

    /// Prepares the probe for exact stage-2 scoring.
    pub(crate) fn prepare_probe(&self, probe: &Template) -> M::Prepared {
        self.matcher.prepare(probe)
    }

    /// Searches the gallery with the configured shortlist budget.
    pub fn search(&self, probe: &Template) -> SearchResult {
        self.search_with_budget(probe, self.config.shortlist)
    }

    /// Searches with an explicit shortlist budget; `shortlist >= len()`
    /// degenerates to an exact brute-force ranking.
    pub fn search_with_budget(&self, probe: &Template, shortlist: usize) -> SearchResult {
        let start = Instant::now();
        let n = self.entries.len();
        let _span = self
            .metrics
            .telemetry
            .trace_span("index.search", &[("gallery", n.to_string())]);
        self.metrics.searches.incr();

        let probe_features = self.probe_features(probe);
        let stage1 = self.stage1(&probe_features);
        self.metrics.bucket_hits.add(stage1.bucket_hits);
        self.metrics
            .bucket_hits_per_search
            .record(stage1.bucket_hits);
        self.metrics.hamming_ops.add(stage1.hamming_word_ops);
        self.metrics
            .hamming_per_search
            .record(stage1.hamming_word_ops);

        let selected = fuse_select(&stage1.vote_scores, &stage1.cyl_scores, shortlist);
        let probe_prepared = self.matcher.prepare(probe);
        let mut candidates = self.rerank(&selected, &probe_prepared);
        candidates.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));

        self.metrics.rerank_comparisons.add(candidates.len() as u64);
        self.metrics
            .candidates_pruned
            .add((n - candidates.len()) as u64);
        self.metrics.shortlist.record(candidates.len() as u64);
        self.metrics.search_time.record(start.elapsed());
        let result = SearchResult {
            candidates,
            gallery_len: n,
        };
        self.runfp.record_item(&result);
        result
    }

    /// Exact brute-force ranking of the whole gallery — the reference the
    /// index's results are validated against, sharing the prepared gallery
    /// and the same deterministic ordering. Not metered as a search.
    pub fn brute_force(&self, probe: &Template) -> SearchResult {
        let probe_prepared = self.matcher.prepare(probe);
        let mut candidates: Vec<Candidate> = (0..self.entries.len() as u32)
            .map(|id| Candidate {
                id,
                score: self
                    .matcher
                    .compare_prepared(self.prepared(id), &probe_prepared),
            })
            .collect();
        candidates.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
        SearchResult {
            candidates,
            gallery_len: self.entries.len(),
        }
    }
}

/// Best-rank fusion under a strict total order: each channel ranks the
/// gallery independently (score desc, id asc) and an entry's fused key is
/// `(better rank, worse rank, id)` ascending. A genuine mate only needs to
/// surface in ONE channel; the channels fail on disjoint probe
/// populations, so the union covers both. Returns the ids of the top
/// `min(k, n)` fused entries (in no particular order).
pub(crate) fn fuse_select(vote_scores: &[f64], cyl_scores: &[f64], k: usize) -> Vec<u32> {
    let n = vote_scores.len();
    debug_assert_eq!(n, cyl_scores.len());
    let vote_ranks = channel_ranks(vote_scores);
    let cyl_ranks = channel_ranks(cyl_scores);
    let mut fused: Vec<(u32, u32, u32)> = (0..n as u32)
        .map(|id| {
            let (v, c) = (vote_ranks[id as usize], cyl_ranks[id as usize]);
            (v.min(c), v.max(c), id)
        })
        .collect();

    let k = k.min(n);
    if k > 0 && k < n {
        fused.select_nth_unstable_by(k - 1, |a, b| a.cmp(b));
    }
    fused.truncate(k);
    fused.into_iter().map(|(_, _, id)| id).collect()
}

/// Ranks one shortlist channel: position of every gallery id when sorted by
/// score descending, ties broken by id ascending (rank 0 is best). The
/// deterministic tie-break makes fused shortlists identical across runs.
/// `total_cmp` (identical to `partial_cmp` on the finite scores both
/// channels produce) so a NaN from a future scoring kernel degrades a rank
/// instead of aborting the search.
fn channel_ranks(scores: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0u32; scores.len()];
    for (rank, &id) in order.iter().enumerate() {
        ranks[id as usize] = rank as u32;
    }
    ranks
}

/// Prepares gallery entries for a batch in parallel (work-stealing over an
/// atomic counter, like `fp-study`'s `parallel_map`), preserving slice
/// order in the result and recording each template's preparation time in
/// the `index.build.seconds` histogram when telemetry is live.
fn parallel_make<M>(
    index: &CandidateIndex<M>,
    templates: &[&Template],
    max_threads: usize,
) -> Vec<PreparedEnrollment<M::Prepared>>
where
    M: PreparableMatcher + Sync,
    M::Prepared: Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let n = templates.len();
    let timed = index.metrics.telemetry.is_enabled();
    let make_timed = |t: &Template| {
        if timed {
            let start = Instant::now();
            let made = index.make_entry(t);
            index.metrics.build_time.record(start.elapsed());
            made
        } else {
            index.make_entry(t)
        }
    };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(max_threads.max(1))
        .min(n.max(1));
    if threads <= 1 {
        return templates.iter().map(|t| make_timed(t)).collect();
    }
    let counter = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, _)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, make_timed(templates[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("index build worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<_>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for chunk in chunks {
        for (i, value) in chunk {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every template prepared exactly once"))
        .collect()
}
