//! # fp-sensor
//!
//! Capture-device models and acquisition simulation for the DSN'13
//! interoperability study.
//!
//! The paper's Table 1 describes four optical live-scan sensors (D0–D3) plus
//! ink-based ten-print cards scanned on a flat-bed at 500 dpi (D4). This
//! crate models each as a [`Device`] with
//!
//! * the exact resolution / image size / capture window of Table 1,
//! * a fixed per-device **distortion signature** (smooth nonlinear warp from
//!   lens geometry, platen flatness, scale calibration — and ink spread plus
//!   roll stretch for D4; see [`distortion`]),
//! * a **noise profile** (minutia position jitter, direction jitter,
//!   dropout, spurious generation),
//!
//! and an [`Acquisition`] engine that turns a master print into an
//! [`Impression`] through the full physical chain: skin condition →
//! pressure-dependent contact area → placement on the platen → device warp →
//! sensor noise → window cropping → pixel quantization.
//!
//! ## Why this reproduces the paper's phenomena
//!
//! * **Same-device genuine scores are higher**: both captures pass through
//!   the *same* warp, so the non-rigid residual between them is second-order
//!   small; between different devices the first-order difference of the two
//!   signatures survives rigid alignment and eats minutiae correspondences.
//! * **Impostor scores are unaffected** by device pairing: impostor geometry
//!   is already random, so extra warp does not change its statistics —
//!   exactly the paper's FMR finding.
//! * **D3 anomalies** come from its small (40.6 × 38.1 mm) window: two D3
//!   captures crop *different* parts of the finger, while a D3 probe against
//!   a full-window gallery keeps everything the probe has.
//! * **D1 anomalies** come from its high noise floor: two noisy captures
//!   match worse than one noisy and one clean capture.
//! * **D4 (ink)** has the largest signature (ink spread, roll stretch), so
//!   it interoperates worst, while its operator-guided, large-area rolled
//!   impressions are mutually consistent — best *intra*-device FNMR.

pub mod acquisition;
pub mod condition;
pub mod device;
pub mod distortion;
pub mod metrics;
pub mod protocol;

pub use acquisition::{Acquisition, Impression, ImpressionFeatures};
pub use condition::CaptureCondition;
pub use device::{Device, SensingTechnology, DEVICES};
pub use distortion::DistortionSignature;
pub use protocol::CaptureProtocol;
