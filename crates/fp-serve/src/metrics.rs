//! The `serve.*` instrument bundle shared by the coordinator's remote
//! shards.
//!
//! Everything lives under one prefix so a remote run's transport cost sits
//! next to the `index.*` metrics it wraps in the same
//! [`MetricsSnapshot`](fp_telemetry::MetricsSnapshot):
//!
//! * `serve.requests` — RPCs issued (including retried attempts);
//! * `serve.bytes_tx` / `serve.bytes_rx` — wire bytes written / read;
//! * `serve.retries` — attempts beyond the first;
//! * `serve.timeouts` — attempts that died on the per-request deadline;
//! * `serve.shed` — typed `OVERLOADED` responses observed (the shard's
//!   admission control refusing work; retried like a transport failure);
//! * `serve.drift` — fingerprint-chain mismatches between a shard's
//!   scraped chain and the coordinator's mirror (each one also surfaced
//!   as a typed `ShardError::FingerprintDrift`);
//! * `serve.rpc.<kind>` — one latency histogram per request frame type
//!   (`enroll`, `stage1`, `rerank`, `health`, `shutdown`), timing the full
//!   round trip including encode/decode.

use std::time::Duration;

use fp_telemetry::{Counter, DurationHistogram, Telemetry};

/// Instruments of the remote-shard transport. Cheap to clone; a bundle
/// built from [`Telemetry::disabled`] (the [`Default`]) is inert.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    pub(crate) telemetry: Telemetry,
    pub(crate) requests: Counter,
    pub(crate) bytes_tx: Counter,
    pub(crate) bytes_rx: Counter,
    pub(crate) retries: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) shed: Counter,
    pub(crate) drift: Counter,
}

impl ServeMetrics {
    /// Registers the `serve.*` instruments on `telemetry`.
    pub fn new(telemetry: &Telemetry) -> ServeMetrics {
        ServeMetrics {
            telemetry: telemetry.clone(),
            requests: telemetry.counter("serve.requests"),
            bytes_tx: telemetry.counter("serve.bytes_tx"),
            bytes_rx: telemetry.counter("serve.bytes_rx"),
            retries: telemetry.counter("serve.retries"),
            timeouts: telemetry.counter("serve.timeouts"),
            shed: telemetry.counter("serve.shed"),
            drift: telemetry.counter("serve.drift"),
        }
    }

    /// Records one completed round trip of the given frame kind.
    pub(crate) fn record_rpc(&self, kind: &'static str, elapsed: Duration) {
        self.rpc_time(kind).record(elapsed);
    }

    /// The per-frame-type round-trip latency histogram (`serve.rpc.<kind>`;
    /// get-or-create, so it is as cheap as a map lookup).
    pub fn rpc_time(&self, kind: &str) -> DurationHistogram {
        self.telemetry.duration(&format!("serve.rpc.{kind}"))
    }
}
