//! Per-interaction skin and presentation condition.
//!
//! Fingerprint quality varies capture-to-capture: skin moisture drifts,
//! users press harder or softer, and the same subject presents differently
//! across sessions. The condition model layers session noise on top of the
//! subject's stable `SkinProfile`; its
//! output drives contact area, dropout, jitter scaling, spurious generation
//! and the NFIQ-like quality features.

use rand::Rng;

use fp_core::dist;
use fp_synth::population::SkinProfile;
use serde::{Deserialize, Serialize};

/// The condition of one finger presentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureCondition {
    /// Skin moisture in `[0, 1]`; 0.5 is ideal, low = dry (broken ridges),
    /// high = wet (bridged valleys).
    pub moisture: f64,
    /// Applied pressure in `[0, 1]`; 0.5 is ideal, low = faint contact,
    /// high = squashed ridges.
    pub pressure: f64,
}

impl CaptureCondition {
    /// The ideal presentation (used as a baseline in tests and ablations).
    pub const IDEAL: CaptureCondition = CaptureCondition {
        moisture: 0.5,
        pressure: 0.5,
    };

    /// Samples the condition of one presentation from the subject's stable
    /// skin profile plus per-interaction noise.
    ///
    /// `habituation` in `[0, 1]` models the paper's future-work question on
    /// user habituation: experienced presenters (later sessions) drift
    /// toward ideal pressure. 0 = first contact, 1 = fully habituated.
    pub fn sample<R: Rng + ?Sized>(skin: &SkinProfile, habituation: f64, rng: &mut R) -> Self {
        let moisture = (skin.moisture + dist::normal(rng, 0.0, 0.07)).clamp(0.02, 0.98);
        let raw_pressure = dist::truncated_normal(rng, 0.5, 0.16, 0.05, 0.95);
        // Habituation pulls pressure toward the ideal 0.5.
        let pressure = 0.5 + (raw_pressure - 0.5) * (1.0 - 0.45 * habituation.clamp(0.0, 1.0));
        CaptureCondition { moisture, pressure }
    }

    /// Ridge clarity in `[0, 1]` implied by this condition: 1 at the ideal
    /// point, degrading quadratically toward dry/wet and faint/squashed
    /// extremes.
    pub fn clarity(&self) -> f64 {
        let moist_pen = (2.0 * (self.moisture - 0.5)).abs().powf(1.5) * 0.55;
        let press_pen = (2.0 * (self.pressure - 0.5)).powi(2) * 0.35;
        (1.0 - moist_pen - press_pen).clamp(0.05, 1.0)
    }

    /// How far from ideal the presentation is, in `[0, 1]`.
    pub fn extremity(&self) -> f64 {
        let m = (2.0 * (self.moisture - 0.5)).abs();
        let p = (2.0 * (self.pressure - 0.5)).abs();
        (m.max(p)).clamp(0.0, 1.0)
    }

    /// Contact-area scale factor for a flat (non-rolled) impression: harder
    /// presses flatten more of the pad onto the platen.
    pub fn flat_contact_scale(&self) -> f64 {
        0.62 + 0.18 * self.pressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::rng::SeedTree;

    fn skin() -> SkinProfile {
        SkinProfile {
            moisture: 0.5,
            elasticity: 0.8,
        }
    }

    #[test]
    fn ideal_condition_has_full_clarity() {
        assert!((CaptureCondition::IDEAL.clarity() - 1.0).abs() < 1e-12);
        assert_eq!(CaptureCondition::IDEAL.extremity(), 0.0);
    }

    #[test]
    fn extreme_conditions_reduce_clarity() {
        let dry = CaptureCondition {
            moisture: 0.05,
            pressure: 0.5,
        };
        let wet = CaptureCondition {
            moisture: 0.95,
            pressure: 0.5,
        };
        let squash = CaptureCondition {
            moisture: 0.5,
            pressure: 0.95,
        };
        assert!(dry.clarity() < 0.6);
        assert!(wet.clarity() < 0.6);
        assert!(squash.clarity() < 0.75);
    }

    #[test]
    fn sampled_conditions_are_in_range() {
        let mut rng = SeedTree::new(1).rng();
        for _ in 0..2000 {
            let c = CaptureCondition::sample(&skin(), 0.0, &mut rng);
            assert!((0.0..=1.0).contains(&c.moisture));
            assert!((0.0..=1.0).contains(&c.pressure));
            assert!((0.0..=1.0).contains(&c.clarity()));
            assert!((0.0..=1.0).contains(&c.extremity()));
        }
    }

    #[test]
    fn habituation_reduces_pressure_spread() {
        let mut rng = SeedTree::new(2).rng();
        let spread = |habituation: f64, rng: &mut fp_core::rng::StreamRng| {
            let xs: Vec<f64> = (0..4000)
                .map(|_| CaptureCondition::sample(&skin(), habituation, rng).pressure)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let novice = spread(0.0, &mut rng);
        let expert = spread(1.0, &mut rng);
        assert!(expert < novice, "novice {novice} vs expert {expert}");
    }

    #[test]
    fn drier_skin_profile_shifts_sampled_moisture() {
        let mut rng = SeedTree::new(3).rng();
        let dry_skin = SkinProfile {
            moisture: 0.2,
            elasticity: 0.8,
        };
        let mean: f64 = (0..2000)
            .map(|_| CaptureCondition::sample(&dry_skin, 0.0, &mut rng).moisture)
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 0.2).abs() < 0.03, "mean = {mean}");
    }

    #[test]
    fn pressure_increases_flat_contact() {
        let soft = CaptureCondition {
            moisture: 0.5,
            pressure: 0.1,
        };
        let hard = CaptureCondition {
            moisture: 0.5,
            pressure: 0.9,
        };
        assert!(hard.flat_contact_scale() > soft.flat_contact_scale());
        assert!(soft.flat_contact_scale() > 0.5);
        assert!(hard.flat_contact_scale() < 0.85);
    }
}
