//! Foreground (ridge area) segmentation by block variance.
//!
//! Fingerprint foreground has high local variance (ridges alternate with
//! valleys) while background is flat. The classic block-variance threshold
//! is enough for synthetic and scanned prints alike.

use crate::image::GrayImage;

/// A per-block boolean foreground mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    block: usize,
    cols: usize,
    rows: usize,
    fg: Vec<bool>,
}

impl Mask {
    /// Whether the block containing pixel `(x, y)` is foreground.
    pub fn is_foreground(&self, x: usize, y: usize) -> bool {
        let bx = (x / self.block).min(self.cols - 1);
        let by = (y / self.block).min(self.rows - 1);
        self.fg[by * self.cols + bx]
    }

    /// Fraction of blocks that are foreground.
    pub fn foreground_fraction(&self) -> f64 {
        if self.fg.is_empty() {
            return 0.0;
        }
        self.fg.iter().filter(|&&b| b).count() as f64 / self.fg.len() as f64
    }

    /// Block size in pixels.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Erodes the mask by one block (foreground blocks keep their status
    /// only if all 4-neighbours are foreground). Suppresses unreliable
    /// border blocks before minutiae extraction.
    pub fn eroded(&self) -> Mask {
        let mut fg = vec![false; self.fg.len()];
        for by in 0..self.rows {
            for bx in 0..self.cols {
                let idx = by * self.cols + bx;
                if !self.fg[idx] {
                    continue;
                }
                let neighbours_ok =
                    [(0i64, 1i64), (0, -1), (1, 0), (-1, 0)]
                        .iter()
                        .all(|&(dx, dy)| {
                            let nx = bx as i64 + dx;
                            let ny = by as i64 + dy;
                            if nx < 0 || ny < 0 || nx >= self.cols as i64 || ny >= self.rows as i64
                            {
                                false
                            } else {
                                self.fg[ny as usize * self.cols + nx as usize]
                            }
                        });
                fg[idx] = neighbours_ok;
            }
        }
        Mask {
            block: self.block,
            cols: self.cols,
            rows: self.rows,
            fg,
        }
    }
}

/// Segments `img` into foreground/background blocks.
///
/// A block is foreground when its variance exceeds `variance_threshold`
/// times the global variance.
///
/// # Panics
///
/// Panics when `block` is zero.
pub fn segment(img: &GrayImage, block: usize, variance_threshold: f64) -> Mask {
    assert!(block > 0, "block size must be positive");
    let cols = img.width().div_ceil(block);
    let rows = img.height().div_ceil(block);
    let (_, global_var) = img.block_stats(0, 0, img.width(), img.height());
    let cutoff = (global_var as f64 * variance_threshold).max(1e-6);
    let mut fg = Vec::with_capacity(cols * rows);
    for by in 0..rows {
        for bx in 0..cols {
            let (_, var) = img.block_stats(bx * block, by * block, block, block);
            fg.push(var as f64 > cutoff);
        }
    }
    Mask {
        block,
        cols,
        rows,
        fg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Image with a high-variance left half and a flat right half.
    fn half_textured() -> GrayImage {
        let mut img = GrayImage::filled(64, 64, 0.5).unwrap();
        for y in 0..64 {
            for x in 0..32 {
                img.set(x, y, ((x + y) % 2) as f32);
            }
        }
        img
    }

    #[test]
    fn textured_half_is_foreground() {
        let mask = segment(&half_textured(), 8, 0.3);
        assert!(mask.is_foreground(10, 32));
        assert!(!mask.is_foreground(50, 32));
        let frac = mask.foreground_fraction();
        assert!((frac - 0.5).abs() < 0.15, "fraction = {frac}");
    }

    #[test]
    fn erosion_shrinks_foreground() {
        let mask = segment(&half_textured(), 8, 0.3);
        let eroded = mask.eroded();
        assert!(eroded.foreground_fraction() < mask.foreground_fraction());
        // Interior survives, boundary goes.
        assert!(eroded.is_foreground(16, 32));
        assert!(!eroded.is_foreground(0, 0));
    }

    #[test]
    fn flat_image_is_all_background() {
        let img = GrayImage::filled(32, 32, 0.3).unwrap();
        let mask = segment(&img, 8, 0.3);
        assert_eq!(mask.foreground_fraction(), 0.0);
    }
}
