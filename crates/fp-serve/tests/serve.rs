//! End-to-end server + coordinator tests over real loopback sockets.
//!
//! The load-bearing test is `remote_matches_sharded_and_unsharded`: a
//! coordinator over TCP shard servers must return candidate lists **byte
//! identical** to the in-process [`ShardedIndex`] and the unsharded
//! [`CandidateIndex`] across shard counts and budgets. The rest pin the
//! failure contract — dead shards fail loudly with typed errors after a
//! bounded retry budget, config drift is rejected, shutdown is clean —
//! and the `serve.*` telemetry wiring.

use std::net::SocketAddr;
use std::time::Duration;

use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, ShardError, ShardedIndex};
use fp_match::PairTableMatcher;
use fp_serve::server::ServerHandle;
use fp_serve::{Coordinator, RetryPolicy, ShardServer};
use fp_telemetry::Telemetry;
use rand::Rng;

fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5D]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    let mut attempts = 0;
    while minutiae.len() < n && attempts < 10_000 {
        attempts += 1;
        let pos = Point::new(
            rng.gen::<f64>() * 16.0 - 8.0,
            rng.gen::<f64>() * 20.0 - 10.0,
        );
        if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
            continue;
        }
        let kind = if rng.gen::<bool>() {
            MinutiaKind::RidgeEnding
        } else {
            MinutiaKind::Bifurcation
        };
        minutiae.push(Minutia::new(
            pos,
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            kind,
            rng.gen::<f64>() * 0.5 + 0.5,
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

fn second_capture(template: &Template, seed: u64) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x5E]).rng();
    let mut minutiae: Vec<Minutia> = Vec::new();
    for m in template.minutiae() {
        if rng.gen::<f64>() <= 0.08 {
            continue;
        }
        minutiae.push(Minutia::new(
            Point::new(
                m.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                m.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
            ),
            m.direction
                .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.05)),
            m.kind,
            m.reliability,
        ));
    }
    let motion = RigidMotion::new(
        Direction::from_radians(fp_core::dist::normal(&mut rng, 0.0, 0.15)),
        Vector::new(
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
            fp_core::dist::normal(&mut rng, 0.0, 1.0),
        ),
    );
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
        .transformed(&motion)
}

fn gallery(seed: u64, n: usize) -> Vec<Template> {
    (0..n)
        .map(|i| synthetic_template(seed * 1_000 + i as u64, 16 + (i * 7) % 16))
        .collect()
}

/// Spawns `s` in-process shard servers on loopback, returning their
/// handles (for fault injection) and addresses.
fn spawn_servers(s: usize) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..s {
        let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0").unwrap();
        addrs.push(server.local_addr().unwrap());
        handles.push(server.spawn());
    }
    (handles, addrs)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        seed: 7,
    }
}

#[test]
fn remote_matches_sharded_and_unsharded() {
    let n = 17;
    let templates = gallery(42, n);
    let config = IndexConfig::default();

    let mut unsharded = CandidateIndex::with_config(PairTableMatcher::default(), config);
    unsharded.enroll_all(&templates);

    for s in [1usize, 2, 3] {
        let (handles, addrs) = spawn_servers(s);
        let mut remote =
            Coordinator::connect(&addrs, config, Duration::from_secs(5), fast_retry()).unwrap();
        remote.enroll_all(&templates).unwrap();
        assert_eq!(remote.len(), n);
        assert_eq!(remote.shard_count(), s);

        let mut sharded = ShardedIndex::with_config(PairTableMatcher::default(), config, s);
        sharded.enroll_all(&templates);

        for probe_pick in [0usize, 5, 11] {
            let probe = second_capture(&templates[probe_pick], 42 ^ probe_pick as u64);
            for budget in [0usize, 1, n / 2, n, n + 5] {
                let a = unsharded.search_with_budget(&probe, budget);
                let b = sharded.search_with_budget(&probe, budget);
                let c = remote.search_with_budget(&probe, budget).unwrap();
                assert_eq!(
                    a.candidates(),
                    c.candidates(),
                    "remote != unsharded at s={s} budget={budget}"
                );
                assert_eq!(
                    b.candidates(),
                    c.candidates(),
                    "remote != in-process sharded at s={s} budget={budget}"
                );
                assert_eq!(a.gallery_len(), c.gallery_len());
                assert_eq!(a.pruned(), c.pruned());
            }
        }

        remote.shutdown_all().unwrap();
        for handle in handles {
            handle.join();
        }
    }
}

#[test]
fn incremental_enrollment_keeps_global_ids_aligned() {
    let templates = gallery(77, 10);
    let config = IndexConfig::default();
    let (handles, addrs) = spawn_servers(3);
    let mut remote =
        Coordinator::connect(&addrs, config, Duration::from_secs(5), fast_retry()).unwrap();
    // Two batches with an awkward split: round-robin must continue where
    // the first batch stopped, exactly like ShardedIndex::enroll_all.
    remote.enroll_all(&templates[..4]).unwrap();
    remote.enroll_all(&templates[4..]).unwrap();

    let mut sharded = ShardedIndex::with_config(PairTableMatcher::default(), config, 3);
    sharded.enroll_all(&templates);

    let probe = second_capture(&templates[3], 0xA11CE);
    let a = sharded.search_with_budget(&probe, 10);
    let b = remote.search_with_budget(&probe, 10).unwrap();
    assert_eq!(a.candidates(), b.candidates());

    remote.shutdown_all().unwrap();
    for handle in handles {
        handle.join();
    }
}

/// Kill a shard under a live coordinator: the next search must fail with
/// `ShardError::Unavailable` naming the dead shard after the bounded retry
/// budget — never return a truncated candidate list.
#[test]
fn dead_shard_fails_loudly_after_retries() {
    let templates = gallery(9, 9);
    let (handles, addrs) = spawn_servers(3);
    let mut remote = Coordinator::connect(
        &addrs,
        IndexConfig::default(),
        Duration::from_millis(500),
        fast_retry(),
    )
    .unwrap();
    remote.enroll_all(&templates).unwrap();
    let probe = second_capture(&templates[2], 123);
    assert!(remote.search_with_budget(&probe, 9).is_ok());

    // Kill shard 1 (its connections die within the server's poll interval).
    let mut handles = handles;
    handles.remove(1).join();
    std::thread::sleep(Duration::from_millis(300));

    match remote.search_with_budget(&probe, 9) {
        Err(ShardError::Unavailable { shard, detail }) => {
            assert_eq!(shard, 1, "the dead shard must be named");
            assert!(detail.contains("attempts"), "detail: {detail}");
        }
        Err(other) => panic!("expected Unavailable, got {other}"),
        Ok(_) => panic!("search over a dead shard must not succeed"),
    }

    for handle in handles {
        handle.join();
    }
}

/// A coordinator whose config differs from what the shard enrolled under
/// is rejected with a typed protocol error (config mismatch), not served
/// under the wrong tuning.
#[test]
fn config_drift_is_rejected() {
    let templates = gallery(5, 6);
    let (handles, addrs) = spawn_servers(1);
    let config_a = IndexConfig::default();
    let mut remote_a =
        Coordinator::connect(&addrs, config_a, Duration::from_secs(5), fast_retry()).unwrap();
    remote_a.enroll_all(&templates).unwrap();

    let config_b = IndexConfig {
        lss_depth: config_a.lss_depth + 1,
        ..config_a
    };
    let mut remote_b =
        Coordinator::connect(&addrs, config_b, Duration::from_secs(5), fast_retry()).unwrap();
    match remote_b.enroll_all(&templates) {
        Err(ShardError::Protocol { detail, .. }) => {
            assert!(detail.contains("config mismatch"), "detail: {detail}");
        }
        other => panic!("expected Protocol(config mismatch), got {other:?}"),
    }

    remote_a.shutdown_all().unwrap();
    for handle in handles {
        handle.join();
    }
}

/// A connection refused outright (no listener) exhausts the retry budget
/// and reports Unavailable; the whole dance stays bounded in time.
#[test]
fn unreachable_shard_reports_unavailable() {
    // Bind-then-drop to get a port with no listener.
    let addr = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        sock.local_addr().unwrap()
    };
    match Coordinator::connect(
        &[addr],
        IndexConfig::default(),
        Duration::from_millis(200),
        fast_retry(),
    ) {
        Err(ShardError::Unavailable { shard, .. }) => assert_eq!(shard, 0),
        Err(other) => panic!("expected Unavailable, got {other}"),
        Ok(_) => panic!("connecting to a dead port must fail"),
    }
}

/// serve.* counters and per-frame-type latency histograms are recorded,
/// and serve.rpc spans nest under the coordinator's index.search span.
#[test]
fn telemetry_counts_rpcs_and_nests_spans() {
    let telemetry = Telemetry::enabled();
    let templates = gallery(13, 8);
    let (handles, addrs) = spawn_servers(2);
    let mut remote = Coordinator::connect(
        &addrs,
        IndexConfig::default(),
        Duration::from_secs(5),
        fast_retry(),
    )
    .unwrap()
    .with_telemetry(&telemetry);
    remote.enroll_all(&templates).unwrap();
    let probe = second_capture(&templates[0], 999);
    remote.search_with_budget(&probe, 8).unwrap();

    let snapshot = telemetry.snapshot();
    let requests = snapshot.counters["serve.requests"];
    assert!(requests >= 6, "enroll x2 + stage1 x2 + rerank: {requests}");
    assert!(snapshot.counters["serve.bytes_tx"] > 0);
    assert!(snapshot.counters["serve.bytes_rx"] > 0);
    assert_eq!(snapshot.counters["serve.retries"], 0);
    assert_eq!(snapshot.counters["serve.timeouts"], 0);
    assert!(snapshot.durations.contains_key("serve.rpc.stage1"));
    assert!(snapshot.durations.contains_key("serve.rpc.enroll"));

    let trace = telemetry.trace_snapshot();
    let search = trace
        .spans
        .iter()
        .find(|s| s.name == "index.search")
        .expect("index.search span recorded");
    let nested_rpc = trace
        .spans
        .iter()
        .any(|s| s.name == "serve.rpc" && ancestor_of(&trace.spans, search.id, s));
    assert!(nested_rpc, "serve.rpc spans must nest under index.search");

    remote.shutdown_all().unwrap();
    for handle in handles {
        handle.join();
    }
}

fn ancestor_of(
    spans: &[fp_telemetry::SpanRecord],
    ancestor: u64,
    span: &fp_telemetry::SpanRecord,
) -> bool {
    let mut parent = span.parent;
    while let Some(id) = parent {
        if id == ancestor {
            return true;
        }
        parent = spans.iter().find(|s| s.id == id).and_then(|s| s.parent);
    }
    false
}

/// The canonical run fingerprint is transport-invariant: unsharded,
/// in-process sharded and remote coordinators fold byte-identical merged
/// results, so their chains are equal — and the per-shard chain scrape
/// verifies cleanly when nothing drifted.
#[test]
fn run_fingerprints_agree_across_transports() {
    let n = 14;
    let templates = gallery(21, n);
    let config = IndexConfig::default();
    let seed = 2013;

    let mut unsharded =
        CandidateIndex::with_config(PairTableMatcher::default(), config).with_run_seed(seed);
    unsharded.enroll_all(&templates);

    for s in [1usize, 3] {
        let (handles, addrs) = spawn_servers(s);
        let telemetry = Telemetry::enabled();
        let mut remote = Coordinator::connect(&addrs, config, Duration::from_secs(5), fast_retry())
            .unwrap()
            .with_telemetry(&telemetry)
            .with_run_seed(seed)
            .with_fingerprint_every(1);
        remote.enroll_all(&templates).unwrap();

        let mut sharded =
            ShardedIndex::with_config(PairTableMatcher::default(), config, s).with_run_seed(seed);
        sharded.enroll_all(&templates);

        let mut fresh =
            CandidateIndex::with_config(PairTableMatcher::default(), config).with_run_seed(seed);
        fresh.enroll_all(&templates);

        for probe_pick in [0usize, 4, 9] {
            let probe = second_capture(&templates[probe_pick], 21 ^ probe_pick as u64);
            fresh.search_with_budget(&probe, n / 2);
            sharded.search_with_budget(&probe, n / 2);
            remote.search_with_budget(&probe, n / 2).unwrap();
        }

        let a = fresh.run_fingerprint();
        let b = sharded.run_fingerprint();
        let c = remote.run_fingerprint();
        assert_eq!(a, b, "unsharded != in-process sharded at s={s}");
        assert_eq!(a, c, "unsharded != remote at s={s}");

        // The in-process sharded index's per-shard part chains equal the
        // coordinator's mirrors of its remote shards: both fold the same
        // served parts in the same order.
        assert_eq!(sharded.shard_fingerprints(), remote.shard_fingerprints());

        // Every search already ran the every-1 scrape; an explicit pass
        // must agree too and the drift counter must have stayed at zero.
        let scraped = remote.verify_fingerprints().unwrap();
        assert_eq!(scraped, remote.shard_fingerprints());
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counters.get("serve.drift").copied(), Some(0));

        remote.shutdown_all().unwrap();
        for handle in handles {
            handle.join();
        }
    }
}

/// Inject fingerprint skew into a shard server: the every-Nth scrape must
/// surface a typed `FingerprintDrift` naming the shard and bump the
/// `serve.drift` counter — a shard whose recorded chain disagrees with
/// what it served is never trusted silently.
#[test]
fn injected_drift_surfaces_as_typed_error() {
    let templates = gallery(33, 8);
    let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let skew = server.skew_fingerprint();
    let handle = server.spawn();

    let telemetry = Telemetry::enabled();
    let mut remote = Coordinator::connect(
        &[addr],
        IndexConfig::default(),
        Duration::from_secs(5),
        fast_retry(),
    )
    .unwrap()
    .with_telemetry(&telemetry)
    .with_fingerprint_every(1);
    remote.enroll_all(&templates).unwrap();

    let probe = second_capture(&templates[1], 0xD21F7);
    // Clean shard: the every-1 check passes.
    remote.search_with_budget(&probe, 8).unwrap();

    // Now skew the shard's reported chain and search again.
    skew.store(0xBAD_C0DE, std::sync::atomic::Ordering::Relaxed);
    match remote.search_with_budget(&probe, 8) {
        Err(ShardError::FingerprintDrift {
            shard,
            expected,
            reported,
        }) => {
            assert_eq!(shard, 0, "the drifting shard must be named");
            assert_eq!(reported, expected ^ 0xBAD_C0DE);
        }
        Err(other) => panic!("expected FingerprintDrift, got {other}"),
        Ok(_) => panic!("a drifting shard must fail the search"),
    }
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counters.get("serve.drift").copied(), Some(1));

    // Clearing the skew restores agreement: drift is detection, not state
    // corruption — the underlying chains never actually diverged.
    skew.store(0, std::sync::atomic::Ordering::Relaxed);
    remote.verify_fingerprints().unwrap();

    remote.shutdown_all().unwrap();
    handle.join();
}

/// STATS scrapes a shard process's own telemetry and lands it in the
/// coordinator's snapshot under `shard<k>.remote.*`, so a remote run's
/// per-shard work counters are visible from one process.
#[test]
fn stats_scrape_merges_remote_instruments() {
    let templates = gallery(55, 10);
    let server_telemetry = Telemetry::enabled();
    let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0")
        .unwrap()
        .with_telemetry(&server_telemetry);
    let addr = server.local_addr().unwrap();
    let handle = server.spawn();

    let telemetry = Telemetry::enabled();
    let mut remote = Coordinator::connect(
        &[addr],
        IndexConfig::default(),
        Duration::from_secs(5),
        fast_retry(),
    )
    .unwrap()
    .with_telemetry(&telemetry);
    remote.enroll_all(&templates).unwrap();
    let probe = second_capture(&templates[0], 77);
    remote.search_with_budget(&probe, 10).unwrap();

    remote.scrape_stats().unwrap();
    let snapshot = telemetry.snapshot();
    assert_eq!(
        snapshot.gauges.get("shard0.remote.index.enrolled").copied(),
        Some(templates.len() as f64),
        "gauges: {:?}",
        snapshot.gauges.keys().collect::<Vec<_>>()
    );
    // Histograms arrive as .count/.sum gauge pairs; one enroll batch was
    // built server-side.
    assert_eq!(
        snapshot
            .gauges
            .get("shard0.remote.index.build.batch_seconds.count")
            .copied(),
        Some(1.0)
    );
    // Re-scraping is idempotent: gauges overwrite, never accumulate.
    remote.scrape_stats().unwrap();
    let again = telemetry.snapshot();
    assert_eq!(
        again.gauges.get("shard0.remote.index.enrolled"),
        snapshot.gauges.get("shard0.remote.index.enrolled")
    );

    remote.shutdown_all().unwrap();
    handle.join();
}

/// Wire-level shutdown stops the server's accept loop (run() returns), so
/// the `serve-shard` process exits by itself.
#[test]
fn shutdown_frame_stops_the_server() {
    let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let runner = std::thread::spawn(move || server.run());
    let remote = Coordinator::connect(
        &[addr],
        IndexConfig::default(),
        Duration::from_secs(5),
        fast_retry(),
    )
    .unwrap();
    remote.shutdown_all().unwrap();
    runner.join().unwrap().unwrap();
}

/// The full distributed-tracing round trip over loopback: traced searches
/// propagate wire trace context into each shard server, a TRACE drain
/// brings every remote span home, and the merged snapshot is one
/// connected tree with one lane per shard — while candidate lists stay
/// byte-identical to an untraced unsharded index.
#[test]
fn collected_traces_merge_into_one_connected_tree() {
    let n = 12;
    let templates = gallery(77, n);
    let config = IndexConfig::default();

    let mut unsharded = CandidateIndex::with_config(PairTableMatcher::default(), config);
    unsharded.enroll_all(&templates);

    let shards = 2;
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..shards {
        // Each in-process server keeps its own registry, standing in for a
        // shard process's: the only way its spans reach the coordinator's
        // snapshot is through the wire-level TRACE drain.
        let server = ShardServer::bind(PairTableMatcher::default(), "127.0.0.1:0")
            .unwrap()
            .with_telemetry(&Telemetry::enabled());
        addrs.push(server.local_addr().unwrap());
        handles.push(server.spawn());
    }

    let telemetry = Telemetry::enabled();
    let mut remote = Coordinator::connect(&addrs, config, Duration::from_secs(5), fast_retry())
        .unwrap()
        .with_telemetry(&telemetry);
    let probes: Vec<Template> = (0..4)
        .map(|p| second_capture(&templates[p], 77 ^ p as u64))
        .collect();
    let collected;
    {
        // One root span over the whole run so enroll, search and drain
        // rpcs share a single ancestor — the merged tree must have
        // exactly one root.
        let _root = telemetry.span("trace.e2e");
        remote.enroll_all(&templates).unwrap();
        for probe in &probes {
            let got = remote.search(probe).unwrap();
            let want = unsharded.search(probe);
            assert_eq!(got.candidates(), want.candidates());
        }
        collected = remote.collect_traces().unwrap();
    }
    assert!(collected > 0, "the drain must fetch remote spans");

    let merged = remote.merged_trace();
    assert_eq!(merged.validate_tree().unwrap(), 1, "one connected tree");

    // Every remote request span hangs under the serve.rpc span that
    // issued it, and queue-wait children came along.
    let requests: Vec<_> = merged
        .spans
        .iter()
        .filter(|s| s.name == "server.request")
        .collect();
    assert!(!requests.is_empty());
    for request in &requests {
        let parent = request.parent.expect("re-parented under an rpc span");
        let parent_name = &merged
            .spans
            .iter()
            .find(|s| s.id == parent)
            .expect("parent present")
            .name;
        assert_eq!(parent_name, "serve.rpc");
    }
    assert!(merged.spans.iter().any(|s| s.name == "server.queue_wait"));

    // One Chrome lane per process: the coordinator plus each shard.
    let mut pids: Vec<u64> = merged.spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids.len(), shards + 1);

    // A second drain with nothing new is incremental, not a re-send.
    assert_eq!(remote.collect_traces().unwrap(), 0);

    remote.shutdown_all().unwrap();
    for handle in handles {
        handle.join();
    }
}
