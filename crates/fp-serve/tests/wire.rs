//! Wire-format contract tests.
//!
//! Two properties carry the whole protocol:
//!
//! 1. **Round trip is the identity** — `decode(encode(f)) == f` for every
//!    frame, with `f64` payloads compared *by bit pattern*, because the
//!    coordinator's byte-identical guarantee dies the moment a score is
//!    perturbed in transit.
//! 2. **Decoding is total** — corrupted, truncated, hostile or random
//!    bytes produce a typed [`WireError`], never a panic and never a
//!    silently wrong frame.

use fp_core::geometry::{Direction, Point};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_core::MatchScore;
use fp_index::{Candidate, IndexConfig, StageOneScores};
use fp_serve::wire::{
    code, crc32, decode_frame, decode_frame_with, encode_frame, encode_frame_at, encode_frame_with,
    read_frame, read_frame_with, write_frame, Frame, ServerTiming, TraceContext, WireError,
    HEADER_LEN, MAGIC, MAX_PAYLOAD, MIN_VERSION, VERSION,
};
use proptest::prelude::*;
use rand::Rng;

/// Re-signs a mutated frame the way the encoder would: the CRC covers the
/// request id and payload length (header bytes 7..15) plus the payload, so
/// hostile-payload tests must seal their tampering with the same formula.
fn reseal(header: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut bytes = header[..HEADER_LEN].to_vec();
    bytes.extend_from_slice(payload);
    let mut signed = header[7..HEADER_LEN].to_vec();
    signed.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(&signed).to_le_bytes());
    bytes
}

fn synthetic_template(seed: u64, n: usize) -> Template {
    let mut rng = SeedTree::new(seed).child(&[0x3E]).rng();
    let mut minutiae = Vec::new();
    for _ in 0..n {
        minutiae.push(Minutia::new(
            Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            ),
            Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
            if rng.gen::<bool>() {
                MinutiaKind::RidgeEnding
            } else {
                MinutiaKind::Bifurcation
            },
            rng.gen::<f64>(),
        ));
    }
    Template::builder(500.0)
        .capture_window_mm(20.0, 24.0)
        .extend(minutiae)
        .build()
        .unwrap()
}

fn synthetic_scores(seed: u64, n: usize) -> StageOneScores {
    let mut rng = SeedTree::new(seed).child(&[0x3F]).rng();
    StageOneScores {
        vote_scores: (0..n).map(|_| rng.gen::<f64>() * 40.0).collect(),
        cyl_scores: (0..n).map(|_| rng.gen::<f64>()).collect(),
        bucket_hits: rng.gen::<u64>() >> 20,
        hamming_word_ops: rng.gen::<u64>() >> 20,
    }
}

/// Bit-level equality of templates: positions, directions and
/// reliabilities must survive the wire with their exact `f64` bits.
fn assert_template_bits(a: &Template, b: &Template) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.resolution_dpi().to_bits(), b.resolution_dpi().to_bits());
    for (ma, mb) in a.minutiae().iter().zip(b.minutiae()) {
        assert_eq!(ma.pos.x.to_bits(), mb.pos.x.to_bits());
        assert_eq!(ma.pos.y.to_bits(), mb.pos.y.to_bits());
        assert_eq!(
            ma.direction.radians().to_bits(),
            mb.direction.radians().to_bits()
        );
        assert_eq!(ma.kind, mb.kind);
        assert_eq!(ma.reliability.to_bits(), mb.reliability.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every request/response frame round-trips exactly through both the
    /// slice codec and the stream codec.
    #[test]
    fn frames_round_trip(seed in 0u64..10_000, n in 0usize..24, scores_n in 0usize..50) {
        let probe = synthetic_template(seed, n);
        let scores = synthetic_scores(seed, scores_n);
        let mut rng = SeedTree::new(seed).child(&[0x40]).rng();
        let candidates: Vec<Candidate> = (0..scores_n)
            .map(|i| Candidate { id: i as u32, score: MatchScore::new(rng.gen::<f64>() * 90.0) })
            .collect();
        let selected: Vec<u32> = (0..scores_n as u32).collect();
        let frames = vec![
            Frame::EnrollBatch {
                config: IndexConfig::default(),
                templates: vec![synthetic_template(seed ^ 1, n), probe.clone()],
                trace: None,
            },
            Frame::EnrollOk { enrolled: n as u32, shard_len: (n * 3) as u32 },
            Frame::StageOne { probe: probe.clone(), trace: None },
            Frame::StageOne {
                probe: probe.clone(),
                trace: Some(TraceContext { trace_id: seed, parent_span_id: seed ^ 0xA5A5, sampled: true }),
            },
            Frame::StageOneOk { scores: scores.clone(), timing: None },
            Frame::StageOneOk {
                scores,
                timing: Some(ServerTiming { queue_wait_ns: seed, work_ns: seed.wrapping_mul(3) }),
            },
            Frame::Rerank { probe: probe.clone(), selected: selected.clone(), trace: None },
            Frame::Rerank {
                probe: probe.clone(),
                selected,
                trace: Some(TraceContext { trace_id: 1, parent_span_id: 2, sampled: false }),
            },
            Frame::RerankOk { candidates: candidates.clone(), timing: None },
            Frame::RerankOk {
                candidates,
                timing: Some(ServerTiming { queue_wait_ns: 0, work_ns: u64::MAX }),
            },
            Frame::Trace { since_span_id: seed },
            Frame::Health,
            Frame::HealthOk { shard_len: 7 },
            Frame::Shutdown,
            Frame::ShutdownOk,
            Frame::Error { code: code::INTERNAL, detail: format!("seed {seed} détail") },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let decoded = decode_frame(&bytes).expect("round trip decodes");
            prop_assert_eq!(&decoded, &frame);
            let (streamed, consumed) = read_frame(&mut &bytes[..]).expect("stream decodes");
            prop_assert_eq!(&streamed, &frame);
            prop_assert_eq!(consumed, bytes.len());
        }
    }

    /// Templates survive the wire with exact f64 bit patterns, and so do
    /// stage-1 score arrays — the substrate of byte-identical results.
    #[test]
    fn payload_f64s_are_bit_exact(seed in 0u64..10_000, n in 1usize..30) {
        let probe = synthetic_template(seed, n);
        let bytes = encode_frame(&Frame::StageOne { probe: probe.clone(), trace: None });
        match decode_frame(&bytes).unwrap() {
            Frame::StageOne { probe: decoded, .. } => assert_template_bits(&probe, &decoded),
            other => panic!("wrong frame {}", other.kind()),
        }

        let scores = synthetic_scores(seed, n);
        let bytes = encode_frame(&Frame::StageOneOk { scores: scores.clone(), timing: None });
        match decode_frame(&bytes).unwrap() {
            Frame::StageOneOk { scores: decoded, .. } => {
                for (a, b) in scores.vote_scores.iter().zip(&decoded.vote_scores) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                for (a, b) in scores.cyl_scores.iter().zip(&decoded.cyl_scores) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                prop_assert_eq!(scores.bucket_hits, decoded.bucket_hits);
                prop_assert_eq!(scores.hamming_word_ops, decoded.hamming_word_ops);
            }
            other => panic!("wrong frame {}", other.kind()),
        }
    }

    /// Flipping any single payload byte is caught by the CRC (or, for a
    /// handful of length-prefix-internal flips, by another typed error) —
    /// never a clean decode of different content, never a panic.
    #[test]
    fn single_byte_payload_corruption_is_caught(seed in 0u64..5_000, flip in 0usize..200) {
        let frame = Frame::StageOneOk { scores: synthetic_scores(seed, 4), timing: None };
        let mut bytes = encode_frame(&frame);
        let payload_start = HEADER_LEN;
        let idx = payload_start + flip % (bytes.len() - payload_start);
        bytes[idx] ^= 0x40;
        match decode_frame(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                false,
                "corrupt byte {} decoded cleanly as {}",
                idx,
                decoded.kind()
            ),
        }
    }

    /// Every strict prefix of a valid frame fails with a typed error
    /// (truncation), never a panic — both codecs.
    #[test]
    fn truncated_frames_error(seed in 0u64..2_000, cut in 0usize..500) {
        let frame = Frame::Rerank {
            probe: synthetic_template(seed, 6),
            selected: vec![0, 1, 2],
            trace: None,
        };
        let bytes = encode_frame(&frame);
        let cut = cut % bytes.len(); // strict prefix
        prop_assert!(decode_frame(&bytes[..cut]).is_err());
        prop_assert!(read_frame(&mut &bytes[..cut]).is_err());
    }

    /// Wire v3: any request id rides the header round trip unharmed, and
    /// the frame body decodes identically regardless of the id — through
    /// both the slice codec and the stream codec.
    #[test]
    fn request_ids_round_trip(seed in 0u64..10_000, id in 0u32..=u32::MAX, n in 0usize..12) {
        let frame = Frame::StageOne { probe: synthetic_template(seed, n), trace: None };
        let bytes = encode_frame_with(id, &frame);
        let (decoded_id, decoded) = decode_frame_with(&bytes).expect("decodes");
        prop_assert_eq!(decoded_id, id);
        prop_assert_eq!(&decoded, &frame);
        let (streamed_id, streamed, consumed) =
            read_frame_with(&mut &bytes[..]).expect("stream decodes");
        prop_assert_eq!(streamed_id, id);
        prop_assert_eq!(&streamed, &frame);
        prop_assert_eq!(consumed, bytes.len());
        // The id-0 compatibility surface sees the same body bytes.
        prop_assert_eq!(&bytes[..7], &encode_frame(&frame)[..7]);
    }

    /// Wire v3: corrupting any bit of the request-id header field is caught
    /// by the frame CRC — a response can never rejoin the wrong caller via
    /// an undetected id flip.
    #[test]
    fn request_id_corruption_is_caught(seed in 0u64..5_000, id in 0u32..=u32::MAX, bit in 0usize..32) {
        let frame = Frame::HealthOk { shard_len: seed as u32 };
        let mut bytes = encode_frame_with(id, &frame);
        bytes[7 + bit / 8] ^= 1 << (bit % 8);
        match decode_frame_with(&bytes) {
            Err(WireError::BadCrc { .. }) => {}
            other => prop_assert!(false, "expected BadCrc, got {:?}", other),
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..20_000, len in 0usize..300) {
        let mut rng = SeedTree::new(seed).child(&[0x41]).rng();
        let bytes: Vec<u8> = (0..len).map(|_| (rng.gen::<u64>() & 0xFF) as u8).collect();
        let _ = decode_frame(&bytes);
        let _ = read_frame(&mut &bytes[..]);
    }

    /// Wire v4: corrupting any byte of the trailing trace-context section
    /// — even under a valid (resealed) CRC — is either rejected with a
    /// typed error or decodes to a frame whose *non-trace* payload is
    /// untouched. The template can never be perturbed by context bytes,
    /// and nothing panics.
    #[test]
    fn trace_context_corruption_never_touches_the_probe(
        seed in 0u64..5_000,
        n in 1usize..8,
        offset in 0usize..18,
        flip in 1u8..=255,
    ) {
        let probe = synthetic_template(seed, n);
        let frame = Frame::StageOne {
            probe: probe.clone(),
            trace: Some(TraceContext {
                trace_id: seed.wrapping_mul(0x9E37),
                parent_span_id: !seed,
                sampled: seed % 2 == 0,
            }),
        };
        let bytes = encode_frame(&frame);
        // The context is the last 18 payload bytes: flag + 2×u64 + sampled.
        let payload_len = bytes.len() - HEADER_LEN - 4;
        let mut payload = bytes[HEADER_LEN..HEADER_LEN + payload_len].to_vec();
        let at = payload_len - 18 + offset % 18;
        payload[at] ^= flip;
        let hostile = reseal(&bytes, &payload);
        match decode_frame(&hostile) {
            Err(_) => {}
            Ok(Frame::StageOne { probe: decoded, .. }) => assert_template_bits(&probe, &decoded),
            Ok(other) => prop_assert!(false, "decoded as different frame {}", other.kind()),
        }
    }

    /// Negotiation window: the same request encodes at v3 and v4, both
    /// decode, the carried template is bit-identical — and the v3 body
    /// simply has no trace section (a v3 peer never sees v4 state).
    #[test]
    fn v3_and_v4_agree_on_the_carried_payload(seed in 0u64..5_000, n in 0usize..10, id in 0u32..=u32::MAX) {
        let probe = synthetic_template(seed, n);
        let frame = Frame::StageOne {
            probe: probe.clone(),
            trace: Some(TraceContext { trace_id: seed, parent_span_id: seed ^ 7, sampled: true }),
        };
        let v4 = encode_frame_at(VERSION, id, &frame);
        let v3 = encode_frame_at(MIN_VERSION, id, &frame);
        prop_assert_eq!(v3.len() + 18, v4.len());
        match decode_frame_with(&v3).expect("v3 decodes") {
            (got_id, Frame::StageOne { probe: decoded, trace }) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(trace, None);
                assert_template_bits(&probe, &decoded);
            }
            (_, other) => prop_assert!(false, "wrong frame {}", other.kind()),
        }
        match decode_frame_with(&v4).expect("v4 decodes") {
            (_, Frame::StageOne { probe: decoded, trace }) => {
                prop_assert_eq!(trace, Some(TraceContext { trace_id: seed, parent_span_id: seed ^ 7, sampled: true }));
                assert_template_bits(&probe, &decoded);
            }
            (_, other) => prop_assert!(false, "wrong frame {}", other.kind()),
        }
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = encode_frame(&Frame::Health);
    bytes[0] = b'X';
    match decode_frame(&bytes) {
        Err(WireError::BadMagic(m)) => assert_eq!(m[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    match read_frame(&mut &bytes[..]) {
        Err(WireError::BadMagic(_)) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_typed() {
    let mut bytes = encode_frame(&Frame::Health);
    bytes[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    match decode_frame(&bytes) {
        Err(WireError::VersionMismatch { got, want }) => {
            assert_eq!(got, VERSION + 1);
            assert_eq!(want, VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn unknown_frame_type_is_typed() {
    let mut bytes = encode_frame(&Frame::Health);
    bytes[6] = 0xEE; // frame type byte; not covered by the payload CRC
    match decode_frame(&bytes) {
        Err(WireError::BadFrameType(0xEE)) => {}
        other => panic!("expected BadFrameType, got {other:?}"),
    }
}

#[test]
fn flipped_crc_is_typed() {
    let frame = Frame::Error {
        code: code::BAD_REQUEST,
        detail: "x".to_string(),
    };
    let mut bytes = encode_frame(&frame);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    match decode_frame(&bytes) {
        Err(WireError::BadCrc { .. }) => {}
        other => panic!("expected BadCrc, got {other:?}"),
    }
}

#[test]
fn oversize_length_prefix_is_typed() {
    let mut bytes = encode_frame(&Frame::Health);
    bytes[11..15].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    match decode_frame(&bytes) {
        Err(WireError::Oversize(len)) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("expected Oversize, got {other:?}"),
    }
    // The stream reader must reject it BEFORE allocating the payload.
    match read_frame(&mut &bytes[..]) {
        Err(WireError::Oversize(_)) => {}
        other => panic!("expected Oversize, got {other:?}"),
    }
}

/// A corrupted element count inside an otherwise CRC-valid payload must be
/// rejected without a giant allocation: re-sign the corrupted payload with
/// a fresh CRC so only the bounds check stands between us and a 16 GiB
/// `Vec::with_capacity`.
#[test]
fn hostile_count_with_valid_crc_is_rejected_cheaply() {
    let bytes = encode_frame(&Frame::StageOneOk {
        scores: StageOneScores {
            vote_scores: vec![1.0],
            cyl_scores: vec![2.0],
            bucket_hits: 0,
            hamming_word_ops: 0,
        },
        timing: None,
    });
    let payload_len = bytes.len() - HEADER_LEN - 4;
    let mut payload = bytes[HEADER_LEN..HEADER_LEN + payload_len].to_vec();
    payload[..4].copy_from_slice(&u32::MAX.to_le_bytes()); // count = 4 billion
    let hostile = reseal(&bytes, &payload);
    match decode_frame(&hostile) {
        Err(WireError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn trailing_payload_bytes_are_rejected() {
    // Append a byte to a Health payload and re-sign it: structurally valid
    // CRC, but the frame decodes to more bytes than the type consumes.
    let payload = vec![0u8];
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.push(7); // Health
    header.extend_from_slice(&0u32.to_le_bytes()); // request id
    header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let bytes = reseal(&header, &payload);
    match decode_frame(&bytes) {
        Err(WireError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn unknown_minutia_kind_is_rejected() {
    let probe = synthetic_template(9, 3);
    let bytes = encode_frame(&Frame::StageOne { probe, trace: None });
    // First minutia's kind byte: payload = dpi(8) + window(32) + count(4)
    // + pos(16) + dir(8), then the kind byte.
    let kind_at = HEADER_LEN + 8 + 32 + 4 + 16 + 8;
    let payload_len = bytes.len() - HEADER_LEN - 4;
    let mut payload = bytes[HEADER_LEN..HEADER_LEN + payload_len].to_vec();
    payload[kind_at - HEADER_LEN] = 9;
    let hostile = reseal(&bytes, &payload);
    match decode_frame(&hostile) {
        Err(WireError::Malformed(detail)) => assert!(detail.contains("minutia kind")),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn write_frame_reports_wire_bytes() {
    let frame = Frame::HealthOk { shard_len: 3 };
    let mut sink = Vec::new();
    let n = write_frame(&mut sink, &frame).unwrap();
    assert_eq!(n, sink.len());
    assert_eq!(n, encode_frame(&frame).len());
}
