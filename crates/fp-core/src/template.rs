//! Minutiae templates — the unit of enrollment and verification.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect, RigidMotion};
use crate::minutia::Minutia;
use crate::{Error, Result};

/// Maximum plausible number of minutiae in a single impression. Templates
/// larger than this indicate a synthesis or extraction bug, so construction
/// rejects them rather than letting quadratic matchers blow up downstream.
pub const MAX_MINUTIAE: usize = 512;

/// A fingerprint template: the extracted minutiae plus the physical capture
/// geometry they were extracted from.
///
/// Templates are immutable after construction; use [`Template::builder`] or
/// [`Template::from_minutiae`] to create them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Template {
    minutiae: Vec<Minutia>,
    resolution_dpi: f64,
    capture_window: Rect,
}

impl Template {
    /// Starts building a template captured at `resolution_dpi`.
    pub fn builder(resolution_dpi: f64) -> TemplateBuilder {
        TemplateBuilder {
            minutiae: Vec::new(),
            resolution_dpi,
            capture_window: None,
        }
    }

    /// Creates a template directly from parts.
    ///
    /// # Errors
    ///
    /// Returns an error when `resolution_dpi` is not positive/finite, when
    /// there are more than [`MAX_MINUTIAE`] minutiae, or when any minutia has
    /// a non-finite coordinate.
    pub fn from_minutiae(
        minutiae: Vec<Minutia>,
        resolution_dpi: f64,
        capture_window: Rect,
    ) -> Result<Self> {
        if !(resolution_dpi.is_finite() && resolution_dpi > 0.0) {
            return Err(Error::invalid(
                "resolution_dpi",
                format!("{resolution_dpi} must be positive and finite"),
            ));
        }
        if minutiae.len() > MAX_MINUTIAE {
            return Err(Error::invalid(
                "minutiae",
                format!("{} exceeds MAX_MINUTIAE = {MAX_MINUTIAE}", minutiae.len()),
            ));
        }
        for (i, m) in minutiae.iter().enumerate() {
            if !(m.pos.x.is_finite() && m.pos.y.is_finite()) {
                return Err(Error::invalid(
                    "minutiae",
                    format!("minutia {i} has non-finite position {:?}", m.pos),
                ));
            }
            if !m.direction.radians().is_finite() {
                return Err(Error::invalid(
                    "minutiae",
                    format!("minutia {i} has a non-finite direction"),
                ));
            }
        }
        Ok(Template {
            minutiae,
            resolution_dpi,
            capture_window,
        })
    }

    /// The minutiae, in construction order.
    pub fn minutiae(&self) -> &[Minutia] {
        &self.minutiae
    }

    /// Number of minutiae.
    pub fn len(&self) -> usize {
        self.minutiae.len()
    }

    /// Whether the template contains no minutiae (e.g. a failed capture).
    pub fn is_empty(&self) -> bool {
        self.minutiae.is_empty()
    }

    /// Capture resolution in dots per inch.
    pub fn resolution_dpi(&self) -> f64 {
        self.resolution_dpi
    }

    /// The physical capture window the minutiae live in.
    pub fn capture_window(&self) -> Rect {
        self.capture_window
    }

    /// Capture area in square millimetres.
    pub fn capture_area_mm2(&self) -> f64 {
        self.capture_window.area()
    }

    /// Minutiae per square millimetre of capture window.
    pub fn minutia_density(&self) -> f64 {
        let area = self.capture_area_mm2();
        if area <= 0.0 {
            0.0
        } else {
            self.minutiae.len() as f64 / area
        }
    }

    /// Mean extraction reliability over the template's minutiae, 0 for an
    /// empty template.
    pub fn mean_reliability(&self) -> f64 {
        if self.minutiae.is_empty() {
            return 0.0;
        }
        self.minutiae.iter().map(|m| m.reliability).sum::<f64>() / self.minutiae.len() as f64
    }

    /// Centroid of the minutiae; `None` for an empty template.
    pub fn centroid(&self) -> Option<Point> {
        if self.minutiae.is_empty() {
            return None;
        }
        let n = self.minutiae.len() as f64;
        let (sx, sy) = self
            .minutiae
            .iter()
            .fold((0.0, 0.0), |(sx, sy), m| (sx + m.pos.x, sy + m.pos.y));
        Some(Point::new(sx / n, sy / n))
    }

    /// A copy of the template with every minutia (and the capture window)
    /// moved by a rigid motion. Used by placement simulation and invariance
    /// tests.
    pub fn transformed(&self, motion: &RigidMotion) -> Template {
        let corners = [
            self.capture_window.min(),
            Point::new(self.capture_window.max().x, self.capture_window.min().y),
            Point::new(self.capture_window.min().x, self.capture_window.max().y),
            self.capture_window.max(),
        ];
        let moved: Vec<Point> = corners.iter().map(|c| motion.apply(c)).collect();
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in &moved {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        Template {
            minutiae: self
                .minutiae
                .iter()
                .map(|m| m.transformed(motion))
                .collect(),
            resolution_dpi: self.resolution_dpi,
            capture_window: Rect::from_corners(Point::new(min_x, min_y), Point::new(max_x, max_y)),
        }
    }

    /// A copy keeping only the minutiae inside `window`, with the window as
    /// the new capture window. Models cropping to a smaller sensor.
    pub fn cropped(&self, window: Rect) -> Template {
        Template {
            minutiae: self
                .minutiae
                .iter()
                .filter(|m| window.contains(&m.pos))
                .copied()
                .collect(),
            resolution_dpi: self.resolution_dpi,
            capture_window: window,
        }
    }
}

/// Incremental constructor for [`Template`].
#[derive(Debug, Clone)]
pub struct TemplateBuilder {
    minutiae: Vec<Minutia>,
    resolution_dpi: f64,
    capture_window: Option<Rect>,
}

impl TemplateBuilder {
    /// Sets the capture window as a centred rectangle of the given size.
    pub fn capture_window_mm(mut self, width: f64, height: f64) -> Self {
        self.capture_window = Rect::centred(Point::ORIGIN, width, height).ok();
        self
    }

    /// Sets an explicit capture window.
    pub fn capture_window(mut self, window: Rect) -> Self {
        self.capture_window = Some(window);
        self
    }

    /// Appends one minutia.
    pub fn push(mut self, m: Minutia) -> Self {
        self.minutiae.push(m);
        self
    }

    /// Appends many minutiae.
    pub fn extend<I: IntoIterator<Item = Minutia>>(mut self, items: I) -> Self {
        self.minutiae.extend(items);
        self
    }

    /// Builds the template.
    ///
    /// # Errors
    ///
    /// Returns an error when no capture window was set (and the default
    /// cannot be derived), when the resolution is invalid, or when the
    /// minutiae fail validation — see [`Template::from_minutiae`].
    pub fn build(self) -> Result<Template> {
        let window = match self.capture_window {
            Some(w) => w,
            None => {
                // Default: tight bounding box with a 1 mm margin, or a unit
                // window for empty templates.
                if self.minutiae.is_empty() {
                    Rect::centred(Point::ORIGIN, 1.0, 1.0)?
                } else {
                    let (mut min_x, mut min_y, mut max_x, mut max_y) = (
                        f64::INFINITY,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        f64::NEG_INFINITY,
                    );
                    for m in &self.minutiae {
                        min_x = min_x.min(m.pos.x);
                        min_y = min_y.min(m.pos.y);
                        max_x = max_x.max(m.pos.x);
                        max_y = max_y.max(m.pos.y);
                    }
                    Rect::from_corners(
                        Point::new(min_x - 1.0, min_y - 1.0),
                        Point::new(max_x + 1.0, max_y + 1.0),
                    )
                }
            }
        };
        Template::from_minutiae(self.minutiae, self.resolution_dpi, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Direction, Vector};
    use crate::minutia::MinutiaKind;

    fn sample_minutia(x: f64, y: f64) -> Minutia {
        Minutia::new(
            Point::new(x, y),
            Direction::from_radians(0.3),
            MinutiaKind::RidgeEnding,
            0.9,
        )
    }

    #[test]
    fn builder_derives_bounding_window() {
        let t = Template::builder(500.0)
            .push(sample_minutia(0.0, 0.0))
            .push(sample_minutia(4.0, 6.0))
            .build()
            .unwrap();
        assert!(t.capture_window().contains(&Point::new(4.0, 6.0)));
        assert!((t.capture_window().width() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_resolution() {
        assert!(Template::builder(0.0).build().is_err());
        assert!(Template::builder(f64::NAN).build().is_err());
        assert!(Template::builder(-500.0).build().is_err());
    }

    #[test]
    fn rejects_oversized_templates() {
        let minutiae: Vec<Minutia> = (0..MAX_MINUTIAE + 1)
            .map(|i| sample_minutia(i as f64 * 0.1, 0.0))
            .collect();
        let window = Rect::centred(Point::ORIGIN, 100.0, 100.0).unwrap();
        assert!(Template::from_minutiae(minutiae, 500.0, window).is_err());
    }

    #[test]
    fn rejects_non_finite_positions() {
        let window = Rect::centred(Point::ORIGIN, 10.0, 10.0).unwrap();
        let bad = vec![sample_minutia(f64::NAN, 0.0)];
        assert!(Template::from_minutiae(bad, 500.0, window).is_err());
    }

    #[test]
    fn cropping_drops_outside_minutiae() {
        let t = Template::builder(500.0)
            .capture_window_mm(20.0, 20.0)
            .push(sample_minutia(0.0, 0.0))
            .push(sample_minutia(8.0, 8.0))
            .build()
            .unwrap();
        let small = Rect::centred(Point::ORIGIN, 4.0, 4.0).unwrap();
        let cropped = t.cropped(small);
        assert_eq!(cropped.len(), 1);
        assert_eq!(cropped.capture_window(), small);
    }

    #[test]
    fn transform_preserves_cardinality_and_density_scale() {
        let t = Template::builder(500.0)
            .capture_window_mm(10.0, 10.0)
            .extend((0..20).map(|i| sample_minutia((i % 5) as f64, (i / 5) as f64)))
            .build()
            .unwrap();
        let moved = t.transformed(&RigidMotion::new(
            Direction::from_radians(1.0),
            Vector::new(5.0, -3.0),
        ));
        assert_eq!(moved.len(), t.len());
        // area grows for a rotated bounding box but must stay within sqrt(2)^2
        assert!(moved.capture_area_mm2() >= t.capture_area_mm2() - 1e-9);
        assert!(moved.capture_area_mm2() <= t.capture_area_mm2() * 2.0 + 1e-9);
    }

    #[test]
    fn centroid_and_reliability_of_empty_template() {
        let t = Template::builder(500.0).build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.centroid(), None);
        assert_eq!(t.mean_reliability(), 0.0);
        assert_eq!(t.minutia_density(), 0.0);
    }
}
