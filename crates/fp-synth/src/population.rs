//! Study populations with the demographics of the DSN'13 cohort (Figure 1).
//!
//! The paper reports 494 randomly selected participants, 53% aged 20–29 and
//! 57.2% Caucasian. Demographics are not decoration here: age drives the
//! skin-condition baseline (older skin is drier and less elastic, a
//! well-documented effect on fingerprint quality), which propagates into
//! image quality and therefore into the paper's Figure 5/Table 6 analyses.

use fp_core::dist;
use fp_core::ids::{Finger, SubjectId};
use fp_core::rng::SeedTree;
use serde::{Deserialize, Serialize};

use crate::master::MasterPrint;

/// Age bands reported in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgeGroup {
    /// Younger than 20.
    Under20,
    /// 20–29 — the modal band (53% of the cohort).
    Twenties,
    /// 30–39.
    Thirties,
    /// 40–49.
    Forties,
    /// 50–59.
    Fifties,
    /// 60 and older.
    SixtyPlus,
}

impl AgeGroup {
    /// All age bands in ascending order.
    pub const ALL: [AgeGroup; 6] = [
        AgeGroup::Under20,
        AgeGroup::Twenties,
        AgeGroup::Thirties,
        AgeGroup::Forties,
        AgeGroup::Fifties,
        AgeGroup::SixtyPlus,
    ];

    /// Cohort frequencies; the 53% figure for ages 20–29 is from the paper,
    /// the rest is a plausible university-town split of the remainder.
    pub const FREQUENCIES: [f64; 6] = [0.06, 0.53, 0.19, 0.11, 0.07, 0.04];

    /// A representative age (years) within the band, for the skin model.
    pub fn representative_age(&self) -> f64 {
        match self {
            AgeGroup::Under20 => 19.0,
            AgeGroup::Twenties => 24.0,
            AgeGroup::Thirties => 34.0,
            AgeGroup::Forties => 44.0,
            AgeGroup::Fifties => 54.0,
            AgeGroup::SixtyPlus => 65.0,
        }
    }

    /// Short label used in the Figure 1 report.
    pub fn label(&self) -> &'static str {
        match self {
            AgeGroup::Under20 => "<20",
            AgeGroup::Twenties => "20-29",
            AgeGroup::Thirties => "30-39",
            AgeGroup::Forties => "40-49",
            AgeGroup::Fifties => "50-59",
            AgeGroup::SixtyPlus => "60+",
        }
    }
}

/// Ethnicity groups reported in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ethnicity {
    /// Caucasian — 57.2% of the cohort per the paper.
    Caucasian,
    /// Asian.
    Asian,
    /// African-American.
    AfricanAmerican,
    /// Hispanic.
    Hispanic,
    /// Middle Eastern.
    MiddleEastern,
    /// Any other / undisclosed.
    Other,
}

impl Ethnicity {
    /// All groups in report order.
    pub const ALL: [Ethnicity; 6] = [
        Ethnicity::Caucasian,
        Ethnicity::Asian,
        Ethnicity::AfricanAmerican,
        Ethnicity::Hispanic,
        Ethnicity::MiddleEastern,
        Ethnicity::Other,
    ];

    /// Cohort frequencies; 57.2% Caucasian is from the paper, the remainder
    /// split plausibly.
    pub const FREQUENCIES: [f64; 6] = [0.572, 0.18, 0.12, 0.07, 0.03, 0.028];

    /// Short label used in the Figure 1 report.
    pub fn label(&self) -> &'static str {
        match self {
            Ethnicity::Caucasian => "Caucasian",
            Ethnicity::Asian => "Asian",
            Ethnicity::AfricanAmerican => "African-American",
            Ethnicity::Hispanic => "Hispanic",
            Ethnicity::MiddleEastern => "Middle Eastern",
            Ethnicity::Other => "Other",
        }
    }
}

/// Stable physiological skin traits of a subject (session-level variation is
/// layered on top by `fp-sensor`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkinProfile {
    /// Baseline skin moisture in `[0, 1]`; 0.5 is ideal for optical capture,
    /// low values mean dry skin (broken ridges), high values mean sweaty
    /// skin (bridged valleys).
    pub moisture: f64,
    /// Skin elasticity in `[0, 1]`; lower elasticity increases placement
    /// distortion.
    pub elasticity: f64,
}

/// One study participant.
#[derive(Debug, Clone, PartialEq)]
pub struct Subject {
    id: SubjectId,
    age: AgeGroup,
    ethnicity: Ethnicity,
    size_factor: f64,
    skin: SkinProfile,
    seed: SeedTree,
}

impl Subject {
    /// Generates subject number `id` of the cohort rooted at `root`.
    fn generate(root: &SeedTree, id: SubjectId) -> Self {
        let seed = root.child(&[0x5B, id.0 as u64]);
        let mut rng = seed.child(&[0]).rng();
        let age = AgeGroup::ALL
            [dist::weighted_index(&mut rng, &AgeGroup::FREQUENCIES).expect("fixed distribution")];
        let ethnicity = Ethnicity::ALL
            [dist::weighted_index(&mut rng, &Ethnicity::FREQUENCIES).expect("fixed distribution")];
        let size_factor = dist::truncated_normal(&mut rng, 1.0, 0.07, 0.8, 1.2);
        // Age-dependent skin: moisture drifts down and elasticity drops with
        // age; both saturate.
        let age_years = age.representative_age();
        let dryness_shift = ((age_years - 24.0) / 100.0).clamp(0.0, 0.35);
        let moisture = dist::beta(&mut rng, 6.0, 6.0) * (1.0 - dryness_shift);
        let elasticity =
            (dist::beta(&mut rng, 8.0, 3.0) - (age_years - 24.0).max(0.0) / 160.0).clamp(0.1, 1.0);
        Subject {
            id,
            age,
            ethnicity,
            size_factor,
            skin: SkinProfile {
                moisture: moisture.clamp(0.02, 0.98),
                elasticity,
            },
            seed,
        }
    }

    /// The subject identifier.
    pub fn id(&self) -> SubjectId {
        self.id
    }

    /// The subject's age band.
    pub fn age_group(&self) -> AgeGroup {
        self.age
    }

    /// The subject's ethnicity group.
    pub fn ethnicity(&self) -> Ethnicity {
        self.ethnicity
    }

    /// Hand-size multiplier (1.0 = cohort average).
    pub fn size_factor(&self) -> f64 {
        self.size_factor
    }

    /// Baseline skin traits.
    pub fn skin(&self) -> SkinProfile {
        self.skin
    }

    /// The subject's seed-tree node, for deriving acquisition streams.
    pub fn seed(&self) -> &SeedTree {
        &self.seed
    }

    /// Derives the master print of one finger (deterministic; regenerating
    /// returns an identical value).
    pub fn master_print(&self, finger: Finger) -> MasterPrint {
        self.master_print_metered(finger, &crate::metrics::SynthMetrics::default())
    }

    /// [`Subject::master_print`] with telemetry: records the generation
    /// into `metrics`.
    pub fn master_print_metered(
        &self,
        finger: Finger,
        metrics: &crate::metrics::SynthMetrics,
    ) -> MasterPrint {
        let node = self.seed.child(&[0xF1, finger.index()]);
        MasterPrint::generate_metered(&node, finger.digit, self.size_factor, metrics)
    }
}

/// Configuration for cohort generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Root seed for the whole cohort.
    pub seed: u64,
    /// Number of participants (the paper used 494).
    pub subjects: usize,
}

impl PopulationConfig {
    /// Creates a config.
    pub fn new(seed: u64, subjects: usize) -> Self {
        PopulationConfig { seed, subjects }
    }

    /// The paper's cohort size with the given seed.
    pub fn paper_scale(seed: u64) -> Self {
        PopulationConfig::new(seed, 494)
    }
}

/// A generated cohort of study participants.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    subjects: Vec<Subject>,
    config: PopulationConfig,
}

impl Population {
    /// Generates the cohort described by `config`.
    pub fn generate(config: &PopulationConfig) -> Self {
        let root = SeedTree::new(config.seed);
        let subjects = (0..config.subjects)
            .map(|i| Subject::generate(&root, SubjectId(i as u32)))
            .collect();
        Population {
            subjects,
            config: *config,
        }
    }

    /// The participants, ordered by id.
    pub fn subjects(&self) -> &[Subject] {
        &self.subjects
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// Whether the cohort is empty.
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }

    /// The generation config.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Age-band histogram as `(label, count)` pairs, for the Figure 1
    /// report.
    pub fn age_histogram(&self) -> Vec<(&'static str, usize)> {
        AgeGroup::ALL
            .iter()
            .map(|g| {
                (
                    g.label(),
                    self.subjects.iter().filter(|s| s.age_group() == *g).count(),
                )
            })
            .collect()
    }

    /// Ethnicity histogram as `(label, count)` pairs, for the Figure 1
    /// report.
    pub fn ethnicity_histogram(&self) -> Vec<(&'static str, usize)> {
        Ethnicity::ALL
            .iter()
            .map(|e| {
                (
                    e.label(),
                    self.subjects.iter().filter(|s| s.ethnicity() == *e).count(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_is_reproducible() {
        let c = PopulationConfig::new(3, 20);
        let a = Population::generate(&c);
        let b = Population::generate(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn demographics_match_paper_at_scale() {
        let pop = Population::generate(&PopulationConfig::paper_scale(1));
        assert_eq!(pop.len(), 494);
        let twenties = pop
            .subjects()
            .iter()
            .filter(|s| s.age_group() == AgeGroup::Twenties)
            .count() as f64
            / 494.0;
        assert!((twenties - 0.53).abs() < 0.07, "twenties = {twenties}");
        let caucasian = pop
            .subjects()
            .iter()
            .filter(|s| s.ethnicity() == Ethnicity::Caucasian)
            .count() as f64
            / 494.0;
        assert!((caucasian - 0.572).abs() < 0.07, "caucasian = {caucasian}");
    }

    #[test]
    fn master_print_is_stable_across_calls() {
        let pop = Population::generate(&PopulationConfig::new(5, 3));
        let s = &pop.subjects()[1];
        assert_eq!(
            s.master_print(Finger::RIGHT_INDEX).minutiae(),
            s.master_print(Finger::RIGHT_INDEX).minutiae()
        );
    }

    #[test]
    fn different_fingers_of_same_subject_differ() {
        let pop = Population::generate(&PopulationConfig::new(5, 2));
        let s = &pop.subjects()[0];
        let right = s.master_print(Finger::RIGHT_INDEX);
        let left = s.master_print(Finger::new(
            fp_core::ids::Hand::Left,
            fp_core::ids::Digit::Index,
        ));
        assert_ne!(right.minutiae(), left.minutiae());
    }

    #[test]
    fn skin_traits_are_in_range() {
        let pop = Population::generate(&PopulationConfig::new(8, 100));
        for s in pop.subjects() {
            let skin = s.skin();
            assert!((0.0..=1.0).contains(&skin.moisture));
            assert!((0.0..=1.0).contains(&skin.elasticity));
        }
    }

    #[test]
    fn older_subjects_have_drier_skin_on_average() {
        let pop = Population::generate(&PopulationConfig::new(13, 2000));
        let mean = |band: AgeGroup| {
            let xs: Vec<f64> = pop
                .subjects()
                .iter()
                .filter(|s| s.age_group() == band)
                .map(|s| s.skin().moisture)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        assert!(mean(AgeGroup::Twenties) > mean(AgeGroup::SixtyPlus));
    }

    #[test]
    fn histograms_cover_all_subjects() {
        let pop = Population::generate(&PopulationConfig::new(2, 77));
        let total: usize = pop.age_histogram().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 77);
        let total: usize = pop.ethnicity_histogram().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 77);
    }
}
