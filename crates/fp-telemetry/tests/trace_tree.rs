//! Integration tests for the flight recorder's public API: concurrent
//! tree construction, export round-trips, and the disabled fast path.

use std::collections::BTreeMap;

use fp_telemetry::{Level, Telemetry};

/// Satellite requirement: 8 threads building spans concurrently (with ctx
/// handoff) yield one well-formed tree — no orphaned parents, one root.
#[test]
fn eight_threads_build_a_single_well_formed_tree() {
    let t = Telemetry::enabled();
    {
        let _root = t.span("study");
        let _stage = t.span("scores");
        let ctx = t.trace_ctx();
        std::thread::scope(|scope| {
            for w in 0..8usize {
                let t = t.clone();
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let _adopt = t.in_ctx(&ctx);
                    let _lane = t.trace_span("worker", &[("worker", w.to_string())]);
                    for cell in 0..4 {
                        let _span = t.span_with("cell", &[("cell", cell.to_string())]);
                        std::hint::black_box(cell);
                    }
                });
            }
        });
    }
    let trace = t.trace_snapshot();
    assert_eq!(trace.dropped_spans, 0);
    // 1 root + 1 stage + 8 workers + 32 cells.
    assert_eq!(trace.spans.len(), 42);
    let roots = trace.validate_tree().expect("tree is well-formed");
    assert_eq!(roots, 1, "every span must reach the single root");

    // Structure is deterministic even though timing is not: the name
    // multiset and the per-name parent names are fixed.
    let by_id: BTreeMap<u64, &str> = trace
        .spans
        .iter()
        .map(|s| (s.id, s.name.as_str()))
        .collect();
    for span in &trace.spans {
        let parent_name = span.parent.map(|p| by_id[&p]);
        match span.name.as_str() {
            "study" => assert_eq!(parent_name, None),
            "scores" => assert_eq!(parent_name, Some("study")),
            "worker" => assert_eq!(parent_name, Some("scores")),
            "cell" => assert_eq!(parent_name, Some("worker")),
            other => panic!("unexpected span {other}"),
        }
    }
}

#[test]
fn chrome_export_round_trips_with_per_thread_monotonic_ts() {
    let t = Telemetry::enabled();
    {
        let _root = t.span("root");
        let ctx = t.trace_ctx();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let _adopt = t.in_ctx(&ctx);
                    for _ in 0..8 {
                        let _span = t.span("tick");
                    }
                });
            }
        });
        t.event_with(Level::Warn, "done", &[("n", "64".to_string())]);
    }
    let json = t.trace_snapshot().to_chrome_trace();
    let text = serde_json::to_string_pretty(&json).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = back["traceEvents"].as_array().unwrap();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut spans = 0;
    let mut instants = 0;
    for e in events {
        match e["ph"].as_str().unwrap() {
            "X" => {
                spans += 1;
                let tid = e["tid"].as_u64().unwrap();
                let ts = e["ts"].as_f64().unwrap();
                if let Some(prev) = last_ts.insert(tid, ts) {
                    assert!(ts >= prev, "lane {tid} ts regressed: {prev} -> {ts}");
                }
            }
            "i" => {
                instants += 1;
                assert_eq!(e["args"]["level"], "warn");
                assert_eq!(e["args"]["n"], "64");
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(spans, 65);
    assert_eq!(instants, 1);
}

/// The disabled handle must record nothing on the trace path — no spans,
/// no events, no drop counts — while keeping the API callable.
#[test]
fn disabled_handle_records_zero_events_on_trace_path() {
    let t = Telemetry::disabled();
    {
        let _span = t.span_with("ghost", &[("k", "v".to_string())]);
        let _lane = t.trace_span("lane", &[]);
        let ctx = t.trace_ctx();
        let _adopt = t.in_ctx(&ctx);
        t.event(Level::Debug, "unrecorded");
    }
    let trace = t.trace_snapshot();
    assert!(trace.spans.is_empty());
    assert!(trace.events.is_empty());
    assert_eq!(trace.dropped_spans, 0);
    assert_eq!(trace.dropped_events, 0);
    assert!(trace.to_chrome_trace()["traceEvents"]
        .as_array()
        .unwrap()
        .is_empty());
    assert!(trace.events_jsonl().is_empty());
}

/// Self-time attribution over a multi-thread trace: per-thread self times
/// telescope to that thread's root spans, so summing self_ns by lane
/// reproduces each lane's busy time exactly.
#[test]
fn self_times_account_for_all_span_time() {
    let t = Telemetry::enabled();
    {
        let _root = t.span("root");
        {
            let _prep = t.span("prep");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let ctx = t.trace_ctx();
        std::thread::scope(|scope| {
            let t = t.clone();
            scope.spawn(move || {
                let _adopt = t.in_ctx(&ctx);
                let _work = t.span("work");
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
    }
    let trace = t.trace_snapshot();
    let times = trace.self_times();
    let total_self: u64 = times.values().map(|v| v.self_ns).sum();
    // `work` ran on its own lane: it is nobody's same-thread child, so it
    // contributes its full duration, and root+prep telescope on the main
    // lane.
    let root = trace.spans.iter().find(|s| s.name == "root").unwrap();
    let work = trace.spans.iter().find(|s| s.name == "work").unwrap();
    assert_eq!(total_self, root.dur_ns + work.dur_ns);
}
