//! FMR/FNMR analysis: the error-tradeoff machinery behind the paper's
//! Tables 5 and 6.
//!
//! Decision rule throughout: a comparison is declared a **match** when
//! `score ≥ threshold`. Hence
//!
//! * FMR(t) = fraction of impostor scores `≥ t` (false matches),
//! * FNMR(t) = fraction of genuine scores `< t` (false non-matches),
//!
//! and both are monotone in `t` (FMR non-increasing, FNMR non-decreasing).

use serde::{Deserialize, Serialize};

/// A labelled set of genuine and impostor similarity scores.
///
/// ```
/// use fp_stats::roc::ScoreSet;
///
/// let set = ScoreSet::new(vec![12.0, 15.0, 9.0], vec![1.0, 2.0, 3.0, 4.0]);
/// // FNMR at the strictest threshold that keeps FMR at or below 25%:
/// let fnmr = set.fnmr_at_fmr(0.25);
/// assert!(fnmr <= 1.0);
/// let (eer, _threshold) = set.eer();
/// assert_eq!(eer, 0.0); // the sets are separable
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreSet {
    genuine: Vec<f64>,
    impostor: Vec<f64>,
}

impl ScoreSet {
    /// Creates a score set; scores are sorted internally.
    ///
    /// NaN scores are rejected by debug assertion (match scores are
    /// constructed NaN-free upstream).
    pub fn new(mut genuine: Vec<f64>, mut impostor: Vec<f64>) -> Self {
        debug_assert!(
            genuine.iter().chain(&impostor).all(|x| !x.is_nan()),
            "scores must not be NaN"
        );
        genuine.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        impostor.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        ScoreSet { genuine, impostor }
    }

    /// The genuine scores, ascending.
    pub fn genuine(&self) -> &[f64] {
        &self.genuine
    }

    /// The impostor scores, ascending.
    pub fn impostor(&self) -> &[f64] {
        &self.impostor
    }

    /// False match rate at threshold `t`: fraction of impostor scores `≥ t`.
    pub fn fmr_at(&self, t: f64) -> f64 {
        if self.impostor.is_empty() {
            return 0.0;
        }
        let below = self.impostor.partition_point(|&s| s < t);
        (self.impostor.len() - below) as f64 / self.impostor.len() as f64
    }

    /// False non-match rate at threshold `t`: fraction of genuine scores
    /// `< t`.
    pub fn fnmr_at(&self, t: f64) -> f64 {
        if self.genuine.is_empty() {
            return 0.0;
        }
        self.genuine.partition_point(|&s| s < t) as f64 / self.genuine.len() as f64
    }

    /// The smallest threshold whose FMR does not exceed `target_fmr`.
    ///
    /// Conservative in the operational sense: the realized FMR at the
    /// returned threshold is `≤ target_fmr` (assuming `target_fmr ≥ 0`).
    /// With an empty impostor set, returns 0.0 (any threshold satisfies the
    /// target).
    pub fn threshold_at_fmr(&self, target_fmr: f64) -> f64 {
        if self.impostor.is_empty() {
            return 0.0;
        }
        let n = self.impostor.len() as f64;
        // FMR(t) = (n - below(t)) / n  ≤ target  ⇔  below(t) ≥ n (1 - target).
        let needed_below = (n * (1.0 - target_fmr)).ceil() as usize;
        if needed_below == 0 {
            return self.impostor[0]; // even the smallest impostor may match
        }
        if needed_below > self.impostor.len() {
            // target_fmr < 0: impossible; return just above the max.
            return next_up(*self.impostor.last().expect("non-empty"));
        }
        // Threshold just above the (needed_below-1)-th impostor score puts
        // exactly `needed_below` scores strictly below it.
        next_up(self.impostor[needed_below - 1])
    }

    /// FNMR at the threshold fixed so that FMR ≤ `target_fmr` — the quantity
    /// tabulated in the paper's Tables 5 and 6.
    pub fn fnmr_at_fmr(&self, target_fmr: f64) -> f64 {
        self.fnmr_at(self.threshold_at_fmr(target_fmr))
    }

    /// Equal error rate and the threshold achieving it, found by scanning
    /// the merged score grid for the point where |FMR − FNMR| is minimal.
    pub fn eer(&self) -> (f64, f64) {
        if self.genuine.is_empty() && self.impostor.is_empty() {
            return (0.0, 0.0);
        }
        let mut best = (f64::INFINITY, 0.0, 0.0);
        let candidates = self
            .genuine
            .iter()
            .chain(self.impostor.iter())
            .copied()
            .chain(std::iter::once(
                self.genuine
                    .last()
                    .copied()
                    .unwrap_or(0.0)
                    .max(self.impostor.last().copied().unwrap_or(0.0))
                    + 1.0,
            ));
        for t in candidates {
            let fmr = self.fmr_at(t);
            let fnmr = self.fnmr_at(t);
            let gap = (fmr - fnmr).abs();
            if gap < best.0 {
                best = (gap, (fmr + fnmr) / 2.0, t);
            }
        }
        (best.1, best.2)
    }

    /// Sampled DET curve: `(threshold, fmr, fnmr)` at `points` thresholds
    /// spanning the observed score range.
    pub fn det_curve(&self, points: usize) -> Vec<(f64, f64, f64)> {
        if points == 0 {
            return Vec::new();
        }
        let lo = self
            .genuine
            .first()
            .copied()
            .unwrap_or(0.0)
            .min(self.impostor.first().copied().unwrap_or(0.0));
        let hi = self
            .genuine
            .last()
            .copied()
            .unwrap_or(1.0)
            .max(self.impostor.last().copied().unwrap_or(1.0));
        (0..points)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64;
                (t, self.fmr_at(t), self.fnmr_at(t))
            })
            .collect()
    }
}

impl ScoreSet {
    /// Area under the ROC curve: the probability that a random genuine
    /// score exceeds a random impostor score (ties count half). 1.0 means
    /// perfect separation, 0.5 chance level.
    ///
    /// Computed from the pooled rank sum in O((m+n) log(m+n)).
    pub fn auc(&self) -> f64 {
        let m = self.genuine.len();
        let n = self.impostor.len();
        if m == 0 || n == 0 {
            return 0.5;
        }
        // Merge the two sorted lists, accumulating, for each genuine score,
        // the number of impostor scores strictly below it plus half the
        // ties.
        let mut wins = 0.0f64;
        let mut i = 0usize; // impostor cursor
        let mut g = 0usize;
        while g < m {
            let score = self.genuine[g];
            while i < n && self.impostor[i] < score {
                i += 1;
            }
            // Count ties from position i.
            let mut ties = 0usize;
            while i + ties < n && self.impostor[i + ties] == score {
                ties += 1;
            }
            wins += i as f64 + ties as f64 / 2.0;
            g += 1;
        }
        wins / (m as f64 * n as f64)
    }
}

/// Wilson score interval for a binomial proportion — the right interval for
/// the tiny FNMR counts in the paper's Tables 5-6 (a normal interval around
/// 2/494 would dip below zero).
///
/// Returns `(lower, upper)` for `successes` out of `trials` at the given
/// z-value (1.96 for 95%). Returns `(0.0, 1.0)` for zero trials.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// The next representable `f64` above `x` (total-order successor for finite
/// inputs). Stable replacement for the unstable `f64::next_up`.
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScoreSet {
        ScoreSet::new(
            vec![10.0, 12.0, 15.0, 20.0, 5.0],
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
    }

    #[test]
    fn fmr_and_fnmr_at_extremes() {
        let s = sample();
        assert_eq!(s.fmr_at(f64::NEG_INFINITY), 1.0);
        assert_eq!(s.fnmr_at(f64::NEG_INFINITY), 0.0);
        assert_eq!(s.fmr_at(100.0), 0.0);
        assert_eq!(s.fnmr_at(100.0), 1.0);
    }

    #[test]
    fn fmr_counts_ties_as_matches() {
        let s = sample();
        // threshold 7.0: impostor score exactly 7.0 still matches (score >= t)
        assert!((s.fmr_at(7.0) - 1.0 / 8.0).abs() < 1e-12);
        assert!((s.fmr_at(7.0 + 1e-9) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_at_fmr_is_conservative() {
        let s = sample();
        for target in [0.0, 0.01, 0.1, 0.125, 0.5, 1.0] {
            let t = s.threshold_at_fmr(target);
            assert!(
                s.fmr_at(t) <= target + 1e-12,
                "target {target}: threshold {t} gives fmr {}",
                s.fmr_at(t)
            );
        }
    }

    #[test]
    fn threshold_at_fmr_zero_excludes_all_impostors() {
        let s = sample();
        let t = s.threshold_at_fmr(0.0);
        assert_eq!(s.fmr_at(t), 0.0);
        // and is the *smallest* such threshold: nudging below the max
        // impostor readmits one.
        assert!(s.fmr_at(7.0) > 0.0);
    }

    #[test]
    fn fnmr_at_fmr_known_value() {
        let s = sample();
        // target FMR 12.5% -> threshold just above 7 -> genuine 5 fails.
        let v = s.fnmr_at_fmr(0.125);
        assert!((v - 0.2).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn rates_are_monotone_in_threshold() {
        let s = sample();
        let mut prev_fmr = 1.0;
        let mut prev_fnmr = 0.0;
        for i in 0..200 {
            let t = -1.0 + i as f64 * 0.15;
            let fmr = s.fmr_at(t);
            let fnmr = s.fnmr_at(t);
            assert!(fmr <= prev_fmr + 1e-12);
            assert!(fnmr >= prev_fnmr - 1e-12);
            prev_fmr = fmr;
            prev_fnmr = fnmr;
        }
    }

    #[test]
    fn eer_balances_errors_for_separable_data() {
        let s = ScoreSet::new(vec![10.0, 11.0, 12.0], vec![1.0, 2.0, 3.0]);
        let (eer, t) = s.eer();
        assert_eq!(eer, 0.0);
        assert!(t > 3.0 && t <= 10.0);
    }

    #[test]
    fn eer_for_overlapping_data_is_positive() {
        let s = ScoreSet::new(vec![1.0, 5.0, 9.0], vec![2.0, 6.0, 8.0]);
        let (eer, _) = s.eer();
        assert!(eer > 0.0 && eer < 1.0);
    }

    #[test]
    fn det_curve_endpoints() {
        let s = sample();
        let det = s.det_curve(50);
        assert_eq!(det.len(), 50);
        assert!(det.first().unwrap().1 >= det.last().unwrap().1); // fmr decreasing
        assert!(det.first().unwrap().2 <= det.last().unwrap().2); // fnmr increasing
    }

    #[test]
    fn empty_sets_are_safe() {
        let s = ScoreSet::new(vec![], vec![]);
        assert_eq!(s.fmr_at(1.0), 0.0);
        assert_eq!(s.fnmr_at(1.0), 0.0);
        assert_eq!(s.threshold_at_fmr(0.1), 0.0);
        let _ = s.eer();
    }

    #[test]
    fn auc_is_one_for_separable_half_for_identical() {
        let separable = ScoreSet::new(vec![10.0, 11.0], vec![1.0, 2.0]);
        assert_eq!(separable.auc(), 1.0);
        let identical = ScoreSet::new(vec![5.0, 5.0], vec![5.0, 5.0]);
        assert!((identical.auc() - 0.5).abs() < 1e-12);
        let inverted = ScoreSet::new(vec![1.0], vec![10.0]);
        assert_eq!(inverted.auc(), 0.0);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let s = ScoreSet::new(vec![2.0, 4.0, 6.0], vec![1.0, 3.0, 5.0]);
        // wins: 2>1 (1), 4>1,3 (2), 6>all (3) => 6/9
        assert!((s.auc() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_empty_is_chance() {
        assert_eq!(ScoreSet::new(vec![], vec![1.0]).auc(), 0.5);
    }

    #[test]
    fn wilson_interval_brackets_the_proportion() {
        let (lo, hi) = wilson_interval(2, 494, 1.96);
        let p = 2.0 / 494.0;
        assert!(lo > 0.0 && lo < p && p < hi && hi < 0.03, "[{lo}, {hi}]");
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let (lo0, _) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo0, 0.0);
        let (_, hi_all) = wilson_interval(100, 100, 1.96);
        assert!(hi_all > 0.99);
    }

    #[test]
    fn next_up_is_strictly_greater() {
        for x in [0.0, 1.0, -1.0, 123.456] {
            assert!(next_up(x) > x);
        }
    }
}
