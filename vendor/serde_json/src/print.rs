//! Compact and pretty JSON printers over the mini-serde `Content` tree.

use serde::Content;

/// Formats a float the way serde_json does: integral values keep a `.0`
/// suffix, everything else uses Rust's shortest round-trip form. Non-finite
/// values print as `null` (they are unrepresentable in JSON).
pub(crate) fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e16 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact (single-line) rendering.
pub(crate) fn compact(content: &Content) -> String {
    let mut out = String::new();
    write_compact(&mut out, content);
    out
}

fn write_compact(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&format_f64(*v)),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

/// Pretty rendering with 2-space indentation, matching serde_json's
/// `to_string_pretty` layout.
pub(crate) fn pretty(content: &Content) -> String {
    let mut out = String::new();
    write_pretty(&mut out, content, 0);
    out
}

fn write_pretty(out: &mut String, content: &Content, depth: usize) {
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}
