//! A throttled progress reporter for the long score-matrix generation.
//!
//! Shared across worker threads (`inc` is an atomic add); at most one
//! stderr line per throttle interval, claimed by a compare-exchange so
//! concurrent workers never double-print.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Prints `label: done/total (rate, ETA)` lines to stderr while work
/// progresses. Inert when built from a disabled
/// [`Telemetry`](crate::Telemetry).
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    label: String,
    total: u64,
    done: AtomicU64,
    start: Instant,
    /// Milliseconds since `start` of the last print, for throttling.
    last_print_ms: AtomicU64,
    throttle_ms: u64,
}

impl crate::Telemetry {
    /// Creates a progress reporter for `total` items of work.
    pub fn progress(&self, label: &str, total: u64) -> Progress {
        Progress {
            enabled: self.is_enabled(),
            label: label.to_string(),
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            throttle_ms: 500,
        }
    }
}

impl Progress {
    /// Records `n` finished items and maybe prints a throttled update.
    #[inline]
    pub fn inc(&self, n: u64) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        self.maybe_print(done);
    }

    /// Items recorded so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    fn maybe_print(&self, done: u64) {
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        if elapsed_ms < last.saturating_add(self.throttle_ms) {
            return;
        }
        // One thread wins the right to print this interval.
        if self
            .last_print_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let secs = elapsed_ms as f64 / 1000.0;
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta = if rate > 0.0 && done < self.total {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        eprintln!(
            "{}: {done}/{} ({rate:.0}/s, ETA {eta:.0}s)",
            self.label, self.total
        );
    }

    /// Prints the final line (if enabled) with the total rate.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let done = self.done();
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        eprintln!(
            "{}: {done}/{} done in {secs:.1}s ({rate:.0}/s)",
            self.label, self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn progress_counts_across_threads() {
        let t = Telemetry::enabled();
        let progress = t.progress("test", 4000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let progress = &progress;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        progress.inc(1);
                    }
                });
            }
        });
        assert_eq!(progress.done(), 4000);
    }

    #[test]
    fn disabled_progress_is_silent_and_counts_nothing() {
        let t = Telemetry::disabled();
        let progress = t.progress("quiet", 10);
        progress.inc(5);
        progress.finish();
        assert_eq!(progress.done(), 0);
    }
}
