//! Prints raw pair-table score quantiles for every (gallery device, probe
//! device) cell plus the impostor distribution — the tool used to calibrate
//! the sensor models and the score calibration map.
//!
//! ```sh
//! cargo run --release -p fp-sensor --example calibrate_scores
//! ```

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_core::Matcher;
use fp_match::PairTableMatcher;
use fp_sensor::{CaptureProtocol, Impression};
use fp_synth::population::{Population, PopulationConfig};

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let h = (sorted.len() - 1) as f64 * q;
    sorted[h.round() as usize]
}

fn main() {
    let subjects = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80usize);
    let pop = Population::generate(&PopulationConfig::new(7001, subjects));
    let protocol = CaptureProtocol::new();
    let matcher = PairTableMatcher::default();

    let caps: Vec<Vec<[Impression; 2]>> = pop
        .subjects()
        .iter()
        .map(|s| {
            DeviceId::ALL
                .iter()
                .map(|&d| {
                    [
                        protocol.capture(s, Finger::RIGHT_INDEX, d, SessionId(0)),
                        protocol.capture(s, Finger::RIGHT_INDEX, d, SessionId(1)),
                    ]
                })
                .collect()
        })
        .collect();

    println!("genuine raw-score quantiles per cell (p05 / p50):");
    for g in 0..5 {
        let mut row = String::new();
        for p in 0..5 {
            let mut xs: Vec<f64> = caps
                .iter()
                .map(|c| {
                    matcher
                        .compare(c[g][0].template(), c[p][1].template())
                        .value()
                })
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            row.push_str(&format!(
                " {:5.1}/{:5.1}",
                quantile(&xs, 0.05),
                quantile(&xs, 0.50)
            ));
        }
        println!("  D{g}:{row}");
    }

    let mut impostor: Vec<f64> = Vec::new();
    for g in 0..5 {
        for p in 0..5 {
            for i in 0..caps.len() {
                for j in [(i + 1) % caps.len(), (i + 7) % caps.len()] {
                    if i != j {
                        impostor.push(
                            matcher
                                .compare(caps[i][g][0].template(), caps[j][p][1].template())
                                .value(),
                        );
                    }
                }
            }
        }
    }
    impostor.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "impostor n={} p50={:.1} p99={:.1} p999={:.1} p9999={:.1} max={:.1}",
        impostor.len(),
        quantile(&impostor, 0.5),
        quantile(&impostor, 0.99),
        quantile(&impostor, 0.999),
        quantile(&impostor, 0.9999),
        impostor.last().unwrap()
    );
    let mean_min: f64 = caps
        .iter()
        .map(|c| {
            c.iter()
                .flat_map(|s| s.iter().map(|i| i.template().len()))
                .min()
                .unwrap() as f64
        })
        .sum::<f64>()
        / caps.len() as f64;
    println!("mean per-subject minimum template size: {mean_min:.1}");
}
