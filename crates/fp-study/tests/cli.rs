//! Smoke tests of the `study` binary: argument handling, report output,
//! JSON export, and the `verify` subcommand.

use std::process::Command;

fn study() -> Command {
    Command::new(env!("CARGO_BIN_EXE_study"))
}

#[test]
fn devices_prints_table1() {
    let out = study().arg("devices").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Cross Match Guardian R2"));
    assert!(
        text.contains("40.6x38.1"),
        "Seek II window missing:\n{text}"
    );
    assert!(text.contains("ink ten-print card"));
}

#[test]
fn single_experiment_runs_at_tiny_scale() {
    let out = study()
        .args(["table3", "--subjects", "6", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DMG"));
    assert!(text.contains("24")); // 6 subjects x 4 devices
}

#[test]
fn json_export_is_valid_and_complete() {
    let dir = std::env::temp_dir().join(format!("fp-study-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("out.json");
    let out = study()
        .args([
            "fig1",
            "--subjects",
            "8",
            "--json",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let raw = std::fs::read_to_string(&path).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    assert_eq!(parsed["config"]["subjects"], 8);
    assert_eq!(parsed["reports"][0]["id"], "fig1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_fails_with_hint() {
    let out = study().arg("table99").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"));
    assert!(err.contains("table5"));
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = study()
        .args(["all", "--bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn verify_subcommand_reports_findings() {
    // Tiny cohorts are noisy, so only require that the subcommand runs and
    // emits the findings report — pass/fail is checked at scale elsewhere.
    let out = study()
        .args(["verify", "--subjects", "10", "--seed", "1"])
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("same-device-genuine-higher"),
        "missing findings:\n{text}"
    );
    assert!(text.contains("kendall-structure"));
}

#[test]
fn json_export_includes_telemetry_section() {
    let dir = std::env::temp_dir().join(format!("fp-study-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("out.json");
    let metrics_path = dir.join("metrics.json");
    let out = study()
        .args([
            "fig1",
            "--subjects",
            "6",
            "--json",
            json_path.to_str().expect("utf-8 path"),
            "--metrics",
            metrics_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json_path).expect("json written"))
            .expect("valid json");
    let telemetry = &parsed["telemetry"];
    assert!(
        telemetry["counters"]["scores.comparisons.genuine"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(
        telemetry["durations"]["scores.cell.g0p0"]["count"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(!telemetry["stages"].as_array().unwrap().is_empty());

    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).expect("metrics written"))
            .expect("valid json");
    assert_eq!(metrics["counters"], telemetry["counters"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_topic_documents_the_instruments() {
    let out = study().arg("metrics").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("telemetry instruments"));
    assert!(text.contains("scores.comparisons.genuine"));
    assert!(text.contains("--metrics"));
}

#[test]
fn trace_flag_writes_chrome_trace_and_event_log() {
    let dir = std::env::temp_dir().join(format!("fp-study-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.json");
    let events_path = dir.join("events.jsonl");
    // `--all` with no positional experiment must run every experiment.
    let out = study()
        .args([
            "--all",
            "--subjects",
            "4",
            "--trace",
            trace_path.to_str().expect("utf-8 path"),
            "--events",
            events_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).expect("trace written"))
            .expect("valid chrome trace json");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"] == "X")
        .map(|e| e["name"].as_str().unwrap())
        .collect();
    // One span per experiment and per device-pair cell.
    for id in fp_study::experiments::ALL_IDS {
        let name = format!("experiment.{id}");
        assert!(span_names.contains(&name.as_str()), "missing {name}");
    }
    for g in 0..5 {
        for p in 0..5 {
            let name = format!("scores.cell.g{g}p{p}");
            assert!(span_names.contains(&name.as_str()), "missing {name}");
        }
    }
    assert_eq!(trace["otherData"]["dropped_spans"], 0);

    // The event log is one valid JSON object per line, and the progress
    // narration that used to be bare eprintln is captured in it.
    let jsonl = std::fs::read_to_string(&events_path).expect("events written");
    let mut messages = Vec::new();
    for line in jsonl.lines() {
        let event: serde_json::Value = serde_json::from_str(line).expect("valid json line");
        messages.push(event["message"].as_str().unwrap().to_string());
    }
    assert!(messages.iter().any(|m| m == "generating study data"));
    assert!(messages.iter().any(|m| m == "score matrices ready"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_scaling_gates_on_recall_and_audits() {
    let dir = std::env::temp_dir().join(format!("fp-study-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let results = |recall: f64, agreed: u64| {
        serde_json::json!({
            "reports": [{
                "id": "ext-scaling",
                "values": {
                    "rows": [
                        {"gallery": 200, "recall": 1.0, "audit_agreed": 12, "audit_sampled": 12},
                        {"gallery": 1000, "recall": recall, "audit_agreed": agreed, "audit_sampled": 12},
                    ]
                }
            }]
        })
    };

    let good = dir.join("good.json");
    std::fs::write(&good, results(0.99, 12).to_string()).expect("fixture written");
    let out = study()
        .args(["check-scaling", good.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ext-scaling smoke ok"));

    let bad_recall = dir.join("bad-recall.json");
    std::fs::write(&bad_recall, results(0.5, 12).to_string()).expect("fixture written");
    let out = study()
        .args(["check-scaling", bad_recall.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "recall 0.5 must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("recall"));

    let bad_audit = dir.join("bad-audit.json");
    std::fs::write(&bad_audit, results(1.0, 7).to_string()).expect("fixture written");
    let out = study()
        .args(["check-scaling", bad_audit.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "audit mismatch must fail the gate");

    let out = study()
        .args(["check-scaling", dir.join("missing.json").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "missing file must fail the gate");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_telemetry_gates_on_recorded_work() {
    let dir = std::env::temp_dir().join(format!("fp-study-tgate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A real tiny full run's --json output must pass the gate (only the
    // full run exercises the 1:N index the gate checks for).
    let results = dir.join("results.json");
    let out = study()
        .args([
            "all",
            "--subjects",
            "4",
            "--json",
            results.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let out = study()
        .args(["check-telemetry", results.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("telemetry section ok"));

    // Zero out the index work in the snapshot: the gate must fail.
    let mut payload: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&results).expect("results readable"))
            .expect("valid json");
    fn field_mut<'a>(v: &'a mut serde_json::Value, key: &str) -> &'a mut serde_json::Value {
        match v {
            serde_json::Value::Object(map) => map.get_mut(key).expect("key present"),
            other => panic!("expected object at {key}, got {other:?}"),
        }
    }
    let counter = field_mut(field_mut(&mut payload, "telemetry"), "counters");
    *field_mut(counter, "index.searches") = serde_json::json!(0);
    let gutted = dir.join("gutted.json");
    std::fs::write(&gutted, payload.to_string()).expect("fixture written");
    let out = study()
        .args(["check-telemetry", gutted.to_str().expect("utf-8 path")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "zeroed counter must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("index.searches"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn render_writes_pgm_to_out_path() {
    let dir = std::env::temp_dir().join(format!("fp-study-render-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let pgm_path = dir.join("print.pgm");
    let out = study()
        .args([
            "render",
            "--seed",
            "3",
            "--out",
            pgm_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&pgm_path).expect("pgm written");
    assert!(bytes.starts_with(b"P5"), "not a binary PGM");
    std::fs::remove_dir_all(&dir).ok();
}
