//! The matcher abstraction and the score type shared by all matchers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::template::Template;

/// A similarity score between two templates.
///
/// Higher means more similar. The study calibrates scores onto the scale used
/// by the paper's commercial matcher, where impostor comparisons essentially
/// never exceed 7 and genuine scores below 10 are considered "low".
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MatchScore(f64);

impl MatchScore {
    /// The zero score (no similarity evidence).
    pub const ZERO: MatchScore = MatchScore(0.0);

    /// Creates a score, clamping negatives and NaN to zero.
    ///
    /// Similarity evidence cannot be negative; mapping NaN to zero keeps
    /// score sets totally ordered, which the threshold search relies on.
    pub fn new(value: f64) -> Self {
        if value.is_nan() || value < 0.0 {
            MatchScore(0.0)
        } else {
            MatchScore(value)
        }
    }

    /// The raw score value (non-negative, finite unless +inf was passed in).
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl From<MatchScore> for f64 {
    fn from(s: MatchScore) -> f64 {
        s.0
    }
}

impl fmt::Display for MatchScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

impl Eq for MatchScore {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for MatchScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so total order is safe.
        self.0
            .partial_cmp(&other.0)
            .expect("MatchScore is never NaN")
    }
}

/// A fingerprint matcher: produces a similarity score for a (gallery, probe)
/// template pair.
///
/// Implementations must be deterministic — the same pair always yields the
/// same score — and must not assume the two templates come from the same
/// device: differing resolutions and capture areas are the whole point of the
/// interoperability study.
pub trait Matcher: Send + Sync {
    /// Compares an enrolled `gallery` template with a verification `probe`
    /// template, returning a non-negative similarity score.
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore;

    /// Short human-readable matcher name for reports.
    fn name(&self) -> &str;
}

impl<M: Matcher + ?Sized> Matcher for &M {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        (**self).compare(gallery, probe)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<M: Matcher + ?Sized> Matcher for Box<M> {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        (**self).compare(gallery, probe)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_clamps_negative_and_nan() {
        assert_eq!(MatchScore::new(-3.0).value(), 0.0);
        assert_eq!(MatchScore::new(f64::NAN).value(), 0.0);
        assert_eq!(MatchScore::new(12.5).value(), 12.5);
    }

    #[test]
    fn scores_sort_totally() {
        let mut v = [
            MatchScore::new(3.0),
            MatchScore::new(1.0),
            MatchScore::new(2.0),
        ];
        v.sort();
        assert_eq!(v[0].value(), 1.0);
        assert_eq!(v[2].value(), 3.0);
    }

    #[test]
    fn matcher_is_object_safe() {
        struct Constant;
        impl Matcher for Constant {
            fn compare(&self, _: &Template, _: &Template) -> MatchScore {
                MatchScore::new(1.0)
            }
            fn name(&self) -> &str {
                "constant"
            }
        }
        let boxed: Box<dyn Matcher> = Box::new(Constant);
        let t = Template::builder(500.0).build().unwrap();
        assert_eq!(boxed.compare(&t, &t).value(), 1.0);
        assert_eq!(boxed.name(), "constant");
    }
}
