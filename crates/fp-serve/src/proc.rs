//! Child-process plumbing for shard servers.
//!
//! `study ext-scaling --remote-shards N` spawns N copies of its own binary
//! as `study serve-shard` children on loopback. The handshake is a single
//! stdout line — the child binds port 0 and prints
//! [`LISTENING_PREFIX`]` <addr>` once the listener is up — so no ports are
//! configured, no races on bind, and the parent can spawn any number of
//! shards concurrently.
//!
//! [`ShardChild`] kills the child on drop: an aborted experiment must not
//! leave orphan shard processes holding galleries.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The stdout handshake line prefix a shard server must print once bound.
pub const LISTENING_PREFIX: &str = "LISTENING";

/// How long [`spawn_shard`] waits for the handshake line before giving up
/// and killing the child.
pub const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

/// A shard server child process. Killed (then reaped) on drop.
pub struct ShardChild {
    child: Child,
    /// The loopback address the child's listener is bound to.
    pub addr: SocketAddr,
}

impl ShardChild {
    /// The child's OS process id (tests use it for fault injection).
    pub fn id(&self) -> u32 {
        self.child.id()
    }

    /// Kills the child immediately (SIGKILL on unix) and reaps it.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits for the child to exit on its own (after a wire-level
    /// shutdown), killing it if `deadline` passes first. Returns whether
    /// the child exited by itself.
    pub fn wait_exit(&mut self, deadline: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            match self.child.try_wait() {
                Ok(Some(_)) => return true,
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => break,
            }
        }
        self.kill();
        false
    }
}

impl Drop for ShardChild {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns `exe args...` as a shard server child and waits for its
/// `LISTENING <addr>` handshake line on stdout.
///
/// The child's stderr is inherited (diagnostics flow through); stdout is
/// piped for the handshake and then left to drain into the pipe — shard
/// servers print nothing else.
pub fn spawn_shard(exe: &Path, args: &[&str]) -> std::io::Result<ShardChild> {
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout piped above");
    let mut reader = BufReader::new(stdout);
    let start = Instant::now();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "shard child exited before printing its LISTENING line",
                ));
            }
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix(LISTENING_PREFIX) {
                    if let Ok(addr) = rest.trim().parse::<SocketAddr>() {
                        return Ok(ShardChild { child, addr });
                    }
                }
                // Tolerate stray lines (e.g. a wrapper script chattering)
                // until the deadline.
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        }
        if start.elapsed() > SPAWN_DEADLINE {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "shard child never printed its LISTENING line",
            ));
        }
    }
}
