//! Score calibration onto the paper's commercial-matcher scale.
//!
//! The Identix BioEngine SDK used in the study emits scores where impostor
//! comparisons essentially never exceed **7** and genuine scores below
//! **10** count as "low" (both thresholds are landmarks in the paper's
//! Figures 2–5). Our raw matcher scores live on a "matched minutiae" scale;
//! [`ScoreCalibration`] applies a monotone affine-with-soft-knee map so the
//! same landmarks carry the same meaning.
//!
//! Calibration never changes score *order*, so FMR/FNMR at corresponding
//! thresholds — and every rank statistic (Kendall τ) — are invariant; only
//! the axis labels move.

use serde::{Deserialize, Serialize};

use fp_core::template::Template;
use fp_core::{MatchScore, Matcher};

use crate::PreparableMatcher;

/// A monotone map from raw matcher scores to the paper's score scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreCalibration {
    /// Raw score mapped to the impostor ceiling (paper scale 7).
    pub raw_impostor_ceiling: f64,
    /// Paper-scale value at the impostor ceiling.
    pub impostor_ceiling: f64,
    /// Paper-scale gain applied above the ceiling.
    pub genuine_gain: f64,
}

impl Default for ScoreCalibration {
    fn default() -> Self {
        // Tuned against PairTableMatcher raw scores in the study harness:
        // raw impostor scores concentrate below ~5.5, genuine same-device
        // raw scores around 15-30.
        ScoreCalibration {
            raw_impostor_ceiling: 6.0,
            impostor_ceiling: 7.0,
            genuine_gain: 2.4,
        }
    }
}

impl ScoreCalibration {
    /// Applies the calibration map to a raw score.
    ///
    /// Below the ceiling the map is linear onto `[0, impostor_ceiling]`;
    /// above it, it continues linearly with `genuine_gain`.
    pub fn apply(&self, raw: MatchScore) -> MatchScore {
        let r = raw.value();
        let mapped = if r <= self.raw_impostor_ceiling {
            r / self.raw_impostor_ceiling * self.impostor_ceiling
        } else {
            self.impostor_ceiling + (r - self.raw_impostor_ceiling) * self.genuine_gain
        };
        MatchScore::new(mapped)
    }

    /// Wraps a matcher so that every comparison is calibrated.
    pub fn wrap<M: Matcher>(self, inner: M) -> Calibrated<M> {
        Calibrated {
            inner,
            calibration: self,
        }
    }
}

/// A matcher whose scores pass through a [`ScoreCalibration`].
#[derive(Debug, Clone)]
pub struct Calibrated<M> {
    inner: M,
    calibration: ScoreCalibration,
}

impl<M> Calibrated<M> {
    /// The wrapped matcher.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The calibration in effect.
    pub fn calibration(&self) -> &ScoreCalibration {
        &self.calibration
    }
}

impl<M: Matcher> Matcher for Calibrated<M> {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.calibration.apply(self.inner.compare(gallery, probe))
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl<M: PreparableMatcher> PreparableMatcher for Calibrated<M> {
    type Prepared = M::Prepared;

    fn prepare(&self, template: &Template) -> Self::Prepared {
        self.inner.prepare(template)
    }

    fn compare_prepared(&self, gallery: &Self::Prepared, probe: &Self::Prepared) -> MatchScore {
        self.calibration
            .apply(self.inner.compare_prepared(gallery, probe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_monotone() {
        let c = ScoreCalibration::default();
        let mut prev = -1.0;
        for i in 0..200 {
            let v = c.apply(MatchScore::new(i as f64 * 0.2)).value();
            assert!(v >= prev, "not monotone at {i}");
            prev = v;
        }
    }

    #[test]
    fn ceiling_maps_to_ceiling() {
        let c = ScoreCalibration::default();
        let at = c.apply(MatchScore::new(c.raw_impostor_ceiling)).value();
        assert!((at - c.impostor_ceiling).abs() < 1e-12);
    }

    #[test]
    fn zero_maps_to_zero() {
        let c = ScoreCalibration::default();
        assert_eq!(c.apply(MatchScore::ZERO).value(), 0.0);
    }

    #[test]
    fn genuine_region_uses_gain() {
        let c = ScoreCalibration::default();
        let a = c
            .apply(MatchScore::new(c.raw_impostor_ceiling + 1.0))
            .value();
        let b = c
            .apply(MatchScore::new(c.raw_impostor_ceiling + 2.0))
            .value();
        assert!((b - a - c.genuine_gain).abs() < 1e-12);
    }

    #[test]
    fn wrapped_matcher_calibrates_scores() {
        struct Fixed(f64);
        impl Matcher for Fixed {
            fn compare(&self, _: &Template, _: &Template) -> MatchScore {
                MatchScore::new(self.0)
            }
            fn name(&self) -> &str {
                "fixed"
            }
        }
        let c = ScoreCalibration::default();
        let m = c.wrap(Fixed(3.0));
        let t = Template::builder(500.0).build().unwrap();
        let expected = c.apply(MatchScore::new(3.0));
        assert_eq!(m.compare(&t, &t), expected);
        assert_eq!(m.name(), "fixed");
    }
}
