//! Multiplexing contract tests for [`MuxConn`] against scripted raw-wire
//! servers.
//!
//! The property the whole serving stack leans on: **a response rejoins
//! exactly the caller that issued its request id — or fails loudly** — no
//! matter what order the server answers in, how many callers share the
//! socket, or how hostile the peer is with ids. Mis-delivery is the one
//! unacceptable outcome: a candidate list answered to the wrong probe
//! would corrupt study results silently.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use fp_serve::mux::{MuxConn, MuxError};
use fp_serve::wire::{read_frame_with, write_frame_with, Frame};
use proptest::prelude::*;

/// Binds a loopback listener and runs `script` against the first accepted
/// connection on a background thread.
fn scripted_server<F>(script: F) -> (SocketAddr, JoinHandle<()>)
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).expect("nodelay");
        script(stream);
    });
    (addr, handle)
}

/// The tagged frame the tests pump through the mux: any frame type works
/// (the mux never looks inside), and `HealthOk` carries a u32 we can use
/// to prove which request a response belongs to.
fn tagged(tag: u32) -> Frame {
    Frame::HealthOk { shard_len: tag }
}

fn tag_of(frame: &Frame) -> u32 {
    match frame {
        Frame::HealthOk { shard_len } => *shard_len,
        other => panic!("expected tagged frame, got '{}'", other.kind()),
    }
}

/// Deterministic Fisher–Yates driven by splitmix64, so proptest shrinks
/// over a single seed instead of a permutation vector.
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        order.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// K requests begun before any is finished; the server answers them in
    /// an arbitrary permutation; the client finishes them in another. Every
    /// response must rejoin exactly the caller whose ticket issued it, and
    /// the connection must have observably carried all K at once.
    #[test]
    fn out_of_order_completions_rejoin_their_callers(
        k in 2usize..10,
        answer_seed in 0u64..10_000,
        finish_seed in 0u64..10_000,
    ) {
        let (addr, server) = scripted_server(move |mut stream| {
            let mut received = Vec::new();
            for _ in 0..k {
                let (id, frame, _) = read_frame_with(&mut stream).expect("server read");
                received.push((id, tag_of(&frame)));
            }
            for &i in &shuffled(k, answer_seed) {
                let (id, tag) = received[i];
                write_frame_with(&mut stream, id, &tagged(tag)).expect("server write");
            }
        });

        let conn = MuxConn::new(addr, Duration::from_secs(5));
        let tickets: Vec<_> = (0..k as u32)
            .map(|tag| conn.begin(&tagged(tag)).expect("begin").0)
            .collect();
        // All K were in flight before the first finish.
        prop_assert_eq!(conn.peak_in_flight(), k);
        let mut seen = vec![false; k];
        for &i in &shuffled(k, finish_seed) {
            let (response, _) = conn.finish(tickets[i]).expect("finish");
            // The response that rejoined ticket i carries ticket i's tag.
            prop_assert_eq!(tag_of(&response), i as u32);
            seen[i] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        server.join().expect("server thread");
    }
}

/// A response whose id matches no in-flight request is a protocol
/// violation: the caller gets a typed error and the frame is never
/// delivered to anyone.
#[test]
fn unsolicited_response_id_fails_loudly() {
    let (addr, server) = scripted_server(|mut stream| {
        let (id, _, _) = read_frame_with(&mut stream).expect("server read");
        // Answer under an id nobody asked with.
        write_frame_with(&mut stream, id.wrapping_add(7), &tagged(99)).expect("server write");
    });

    let conn = MuxConn::new(addr, Duration::from_secs(5));
    match conn.call(&tagged(1)) {
        Err(MuxError::Protocol { detail }) => {
            assert!(detail.contains("unsolicited"), "detail: {detail}")
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
    server.join().expect("server thread");
}

/// A duplicated response id — answered once correctly, then again — must
/// not be delivered twice: the second copy arrives with no in-flight
/// request to claim it and poisons the connection instead of rejoining a
/// *different* caller that happens to be waiting.
#[test]
fn duplicate_response_id_is_rejected_not_misdelivered() {
    let (addr, server) = scripted_server(|mut stream| {
        let (id_a, frame_a, _) = read_frame_with(&mut stream).expect("read a");
        write_frame_with(&mut stream, id_a, &tagged(tag_of(&frame_a))).expect("answer a");
        // The hostile part: answer id A a second time while B is waiting.
        let (_id_b, _, _) = read_frame_with(&mut stream).expect("read b");
        write_frame_with(&mut stream, id_a, &tagged(tag_of(&frame_a))).expect("duplicate a");
    });

    let conn = MuxConn::new(addr, Duration::from_secs(5));
    let (response, _, _) = conn.call(&tagged(10)).expect("first call");
    assert_eq!(tag_of(&response), 10);
    match conn.call(&tagged(20)) {
        // The duplicate must never surface as B's answer…
        Ok((frame, _, _)) => panic!("duplicate delivered as '{}'", frame.kind()),
        // …it must fail as a protocol violation.
        Err(MuxError::Protocol { detail }) => {
            assert!(detail.contains("unsolicited"), "detail: {detail}")
        }
        Err(other) => panic!("expected Protocol error, got {other:?}"),
    }
    server.join().expect("server thread");
}

/// A request the server never answers times out with a typed transport
/// error, and the *next* call transparently reconnects and succeeds — a
/// stuck request costs its caller a deadline, not the connection.
#[test]
fn timeout_is_typed_and_the_connection_recovers() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        // First connection: swallow one request, never answer.
        let (mut first, _) = listener.accept().expect("accept first");
        let _ = read_frame_with(&mut first);
        // Second connection (the client's reconnect): echo until EOF.
        let (mut second, _) = listener.accept().expect("accept second");
        while let Ok((id, frame, _)) = read_frame_with(&mut second) {
            write_frame_with(&mut second, id, &frame).expect("echo");
        }
        drop(first);
    });

    let conn = MuxConn::new(addr, Duration::from_millis(300));
    match conn.call(&tagged(1)) {
        Err(MuxError::Transport { timeout, .. }) => assert!(timeout, "expected a timeout"),
        other => panic!("expected Transport timeout, got {other:?}"),
    }
    let (response, _, _) = conn.call(&tagged(2)).expect("call after reconnect");
    assert_eq!(tag_of(&response), 2);
    drop(conn);
    server.join().expect("server thread");
}

/// Many threads hammering one connection against an out-of-order echo
/// server: every caller gets exactly its own tag back. This is the
/// mis-delivery stress test — any crossed wire shows up as a wrong tag.
#[test]
fn concurrent_callers_never_receive_each_others_responses() {
    const THREADS: u32 = 8;
    const CALLS: u32 = 25;
    let (addr, server) = scripted_server(|mut stream| {
        // Echo every frame back under its own id until the client closes.
        while let Ok((id, frame, _)) = read_frame_with(&mut stream) {
            write_frame_with(&mut stream, id, &frame).expect("echo");
        }
    });

    let conn = MuxConn::new(addr, Duration::from_secs(10));
    // Deterministic overlap first: two begun before either finishes.
    let (a, _) = conn.begin(&tagged(700_000)).expect("begin a");
    let (b, _) = conn.begin(&tagged(700_001)).expect("begin b");
    assert_eq!(conn.peak_in_flight(), 2);
    assert_eq!(tag_of(&conn.finish(b).expect("finish b").0), 700_001);
    assert_eq!(tag_of(&conn.finish(a).expect("finish a").0), 700_000);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let conn = &conn;
            scope.spawn(move || {
                for i in 0..CALLS {
                    let tag = t * 1_000 + i;
                    let (response, _, _) = conn.call(&tagged(tag)).expect("call");
                    assert_eq!(tag_of(&response), tag, "thread {t} got a foreign response");
                }
            });
        }
    });
    drop(conn);
    server.join().expect("server thread");
}

/// Deadline expiry with the request id still in flight: the waiter gets a
/// *typed* timeout (`Transport { timeout: true }` from the expiry path, not
/// a socket-level read error), the connection survives, and the late
/// response to the abandoned id is drained and dropped — never delivered
/// to a different caller. A response to an id that was *never* issued is
/// the distinct `unsolicited` protocol violation; this test pins both
/// outcomes apart.
#[test]
fn deadline_expiry_abandons_the_id_and_drops_the_late_response() {
    const STARVED_TAG: u32 = 999;
    const FLUSH_TAG: u32 = 77_777;
    const POISON_TAG: u32 = 88_888;
    let (addr, server) = scripted_server(|mut stream| {
        let mut starved_id = None;
        loop {
            let (id, frame, _) = read_frame_with(&mut stream).expect("server read");
            match tag_of(&frame) {
                // The starved request: remember its id, answer nothing.
                STARVED_TAG => starved_id = Some(id),
                // The flush request: first the *late* answer to the
                // abandoned id, then the flush's own echo. The client must
                // drain the former and deliver only the latter.
                FLUSH_TAG => {
                    let late = starved_id.take().expect("starved before flushed");
                    write_frame_with(&mut stream, late, &tagged(STARVED_TAG)).expect("late");
                    write_frame_with(&mut stream, id, &frame).expect("flush echo");
                }
                // The poison request: answer under an id nobody ever
                // issued — a genuine protocol violation.
                POISON_TAG => {
                    write_frame_with(&mut stream, id.wrapping_add(1_000), &tagged(0))
                        .expect("unsolicited");
                    return;
                }
                // Keepalive traffic from the pump thread: echo.
                _ => {
                    write_frame_with(&mut stream, id, &frame).expect("echo");
                }
            }
        }
    });

    let deadline = Duration::from_millis(400);
    let conn = MuxConn::new(addr, deadline);
    let (starved, _) = conn.begin(&tagged(STARVED_TAG)).expect("begin starved");
    let starved_id = starved.id();

    std::thread::scope(|scope| {
        // A pump caller keeps the socket alive (and usually owns the read
        // half) while the starved caller waits out its deadline, so the
        // expiry exercises the abandoned-id path rather than a socket
        // read timeout poisoning the connection.
        let pump = scope.spawn(|| {
            for i in 0..2 * (400 / 25) {
                let (response, _, _) = conn.call(&tagged(i)).expect("pump call");
                assert_eq!(tag_of(&response), i, "pump got a foreign response");
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        // The typed timeout from the expiry path, not a transport fault.
        match conn.finish(starved) {
            Err(MuxError::Transport { detail, timeout }) => {
                assert!(timeout, "expiry must be flagged as a timeout");
                assert!(
                    detail.contains("no response within"),
                    "expected the deadline-expiry detail, got: {detail}"
                );
            }
            other => panic!("expected Transport timeout, got {other:?}"),
        }
        pump.join().expect("pump thread");
    });

    // The late response to the abandoned id arrives *before* the flush
    // echo; it must be dropped on the floor — the flush caller gets its
    // own echo back, and the connection stays healthy (read half reaped
    // back into the pool, no poisoning).
    let (response, _, _) = conn.call(&tagged(FLUSH_TAG)).expect("flush call");
    assert_eq!(
        tag_of(&response),
        FLUSH_TAG,
        "late response was mis-delivered"
    );

    // An id that was never issued is a different animal: counted as an
    // unsolicited protocol violation, never delivered.
    match conn.call(&tagged(POISON_TAG)) {
        Err(MuxError::Protocol { detail }) => {
            assert!(detail.contains("unsolicited"), "detail: {detail}");
            assert!(
                !detail.contains(&format!("id {starved_id} ")),
                "the abandoned id must not resurface as unsolicited"
            );
        }
        other => panic!("expected Protocol unsolicited, got {other:?}"),
    }
    server.join().expect("server thread");
}
