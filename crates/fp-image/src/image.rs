//! A minimal grey-scale image type in `f32`, row-major.

use fp_core::{Error, Result};

/// A grey-scale image; values conventionally live in `[0, 1]` with 0 = ridge
/// (black ink) and 1 = valley/background (white paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates an image filled with `value`.
    ///
    /// # Errors
    ///
    /// Returns an error when either dimension is zero.
    pub fn filled(width: usize, height: usize, value: f32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::invalid(
                "dimensions",
                format!("{width}x{height}: both must be positive"),
            ));
        }
        Ok(GrayImage {
            width,
            height,
            data: vec![value; width * height],
        })
    }

    /// Creates an image from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns an error when `data.len() != width * height` or a dimension
    /// is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::invalid(
                "dimensions",
                format!("{width}x{height}: both must be positive"),
            ));
        }
        if data.len() != width * height {
            return Err(Error::invalid(
                "data",
                format!("length {} != {width}x{height}", data.len()),
            ));
        }
        Ok(GrayImage {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw pixel data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (debug-friendly; hot paths use `get`).
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Checked pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<f32> {
        if x < self.width && y < self.height {
            Some(self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Pixel accessor clamping coordinates to the border (replicate
    /// padding).
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets one pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Minimum and maximum pixel value (NaN-free input assumed).
    pub fn min_max(&self) -> (f32, f32) {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in &self.data {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// Linearly rescales pixel values so they span `[0, 1]`; constant images
    /// become all-0.5.
    pub fn normalized(&self) -> GrayImage {
        let (min, max) = self.min_max();
        let range = max - min;
        let data = if range <= f32::EPSILON {
            vec![0.5; self.data.len()]
        } else {
            self.data.iter().map(|&v| (v - min) / range).collect()
        };
        GrayImage {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Mean and variance over a rectangular block clamped to the image.
    pub fn block_stats(&self, x0: usize, y0: usize, w: usize, h: usize) -> (f32, f32) {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        let mut n = 0usize;
        for y in y0..y1 {
            for x in x0..x1 {
                let v = self.at(x, y) as f64;
                sum += v;
                sum2 += v * v;
                n += 1;
            }
        }
        if n == 0 {
            return (0.0, 0.0);
        }
        let mean = sum / n as f64;
        (
            (mean) as f32,
            ((sum2 / n as f64) - mean * mean).max(0.0) as f32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(GrayImage::filled(0, 10, 0.0).is_err());
        assert!(GrayImage::from_data(3, 3, vec![0.0; 8]).is_err());
        assert!(GrayImage::from_data(3, 3, vec![0.0; 9]).is_ok());
    }

    #[test]
    fn clamped_access_replicates_border() {
        let img = GrayImage::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(img.at_clamped(-5, -5), 1.0);
        assert_eq!(img.at_clamped(10, 10), 4.0);
        assert_eq!(img.at_clamped(10, -1), 2.0);
    }

    #[test]
    fn normalization_spans_unit_interval() {
        let img = GrayImage::from_data(2, 2, vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        let n = img.normalized();
        let (min, max) = n.min_max();
        assert_eq!(min, 0.0);
        assert_eq!(max, 1.0);
    }

    #[test]
    fn constant_image_normalizes_to_half() {
        let img = GrayImage::filled(4, 4, 7.0).unwrap();
        assert!(img.normalized().data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn block_stats_match_manual_computation() {
        let img = GrayImage::from_data(2, 2, vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let (mean, var) = img.block_stats(0, 0, 2, 2);
        assert!((mean - 4.0).abs() < 1e-6);
        assert!((var - 5.0).abs() < 1e-5);
    }

    #[test]
    fn block_stats_clamp_to_image() {
        let img = GrayImage::from_data(2, 1, vec![2.0, 4.0]).unwrap();
        let (mean, _) = img.block_stats(1, 0, 10, 10);
        assert!((mean - 4.0).abs() < 1e-6);
    }
}
