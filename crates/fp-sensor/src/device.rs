//! The five capture devices of the study (paper Table 1).

use serde::{Deserialize, Serialize};

use fp_core::geometry::{Point, Rect};
use fp_core::ids::DeviceId;

use crate::distortion::DistortionSignature;

/// The sensing technology family of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensingTechnology {
    /// Optical frustrated-total-internal-reflection live scan (glass platen,
    /// laser source, CCD/CMOS camera) — D0 through D3.
    OpticalFtir,
    /// Ink on a ten-print card, scanned on a flat-bed scanner — D4.
    InkTenPrint,
    /// Touch capacitive solid-state sensor (the finger is the upper
    /// electrode of a capacitor array). Not fielded in the study, but part
    /// of the paper's §I technology taxonomy; available for extension
    /// scenarios such as `examples/us_visit.rs`.
    CapacitiveTouch,
    /// Swipe capacitive sensor: the finger is dragged across a one-line
    /// array and the image is reconstructed from slices. Swipe-speed
    /// variation leaves per-capture *stitching* artifacts (band-wise
    /// lateral offsets and vertical stretch) that no other technology has.
    CapacitiveSwipe,
}

/// Stochastic imperfection parameters of a device's capture chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Standard deviation (mm) of minutia position jitter.
    pub position_jitter: f64,
    /// Von Mises concentration of minutia direction jitter (higher =
    /// cleaner).
    pub direction_kappa: f64,
    /// Baseline probability that a true minutia is missed under ideal skin
    /// condition.
    pub base_dropout: f64,
    /// Spurious minutiae per mm² of captured contact area under ideal
    /// condition.
    pub spurious_rate: f64,
    /// Additive NFIQ bias (levels): positive values push quality toward the
    /// poor end. Ink cards and cheap sensors image ridges less crisply at
    /// identical geometry.
    pub quality_bias: f64,
    /// Width (mm) of the low-sensitivity band along the capture-window edge.
    /// Illumination falls off toward the platen boundary, so minutiae landing
    /// in the band are increasingly likely to be missed. Large for the
    /// handheld D3, whose small window puts much of the finger in the band.
    pub vignette_band_mm: f64,
}

/// A capture device: identity, paper Table 1 characteristics, distortion
/// signature, and noise profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Stable identifier (D0..D4).
    pub id: DeviceId,
    /// Commercial model name from the paper.
    pub model: &'static str,
    /// Technology family.
    pub technology: SensingTechnology,
    /// Native resolution in dpi (paper Table 1).
    pub resolution_dpi: f64,
    /// Image size in pixels (paper Table 1).
    pub image_px: (u32, u32),
    /// Capture area in mm (paper Table 1).
    pub capture_mm: (f64, f64),
    /// The device's fixed geometric distortion signature.
    pub distortion: DistortionSignature,
    /// The device's noise profile.
    pub noise: NoiseProfile,
}

impl Device {
    /// The capture window as a centred rectangle in platen coordinates.
    pub fn capture_window(&self) -> Rect {
        Rect::from_corners(
            Point::new(-self.capture_mm.0 / 2.0, -self.capture_mm.1 / 2.0),
            Point::new(self.capture_mm.0 / 2.0, self.capture_mm.1 / 2.0),
        )
    }

    /// Pixel pitch in mm (25.4 / dpi).
    pub fn pixel_pitch_mm(&self) -> f64 {
        25.4 / self.resolution_dpi
    }

    /// Whether this device produces rolled ink impressions.
    pub fn is_ink(&self) -> bool {
        self.technology == SensingTechnology::InkTenPrint
    }

    /// Whether this device reconstructs the image from swipe slices.
    pub fn is_swipe(&self) -> bool {
        self.technology == SensingTechnology::CapacitiveSwipe
    }

    /// Looks up a device by id.
    ///
    /// ```
    /// use fp_core::ids::DeviceId;
    /// use fp_sensor::Device;
    ///
    /// let d3 = Device::by_id(DeviceId(3));
    /// assert_eq!(d3.model, "Cross Match Seek II");
    /// assert_eq!(d3.capture_mm, (40.6, 38.1)); // the paper's Table 1
    /// ```
    pub fn by_id(id: DeviceId) -> &'static Device {
        &DEVICES[id.0 as usize]
    }
}

/// The study's five devices, indexed as in the paper's Table 1.
///
/// Physical characteristics (resolution, image size, capture area) are taken
/// verbatim from the paper. Distortion signatures and noise profiles are our
/// models, chosen so that the *relative* behaviour matches the paper's
/// findings (see crate docs); the absolute values are not measurements of
/// the real devices.
pub static DEVICES: [Device; 5] = [
    // D0 — Cross Match Guardian R2: flagship ten-print livescan; clean
    // optics, big platen.
    Device {
        id: DeviceId(0),
        model: "Cross Match Guardian R2",
        technology: SensingTechnology::OpticalFtir,
        resolution_dpi: 500.0,
        image_px: (800, 750),
        capture_mm: (81.0, 76.0),
        distortion: DistortionSignature {
            scale: 1.000,
            k_radial: 0.30,
            shear_x: 0.004,
            shear_y: -0.003,
            wave_amp: 0.07,
            wave_freq: 0.45,
            wave_phase: 0.3,
            roll_stretch: 0.0,
        },
        noise: NoiseProfile {
            position_jitter: 0.085,
            direction_kappa: 90.0,
            base_dropout: 0.055,
            spurious_rate: 0.0035,
            quality_bias: 0.0,
            vignette_band_mm: 2.0,
        },
    },
    // D1 — i3 digID Mini: compact/cheap unit; optics similar to D0's family
    // but a markedly higher noise floor (drives the paper's {D1,D1}
    // diagonal anomaly).
    Device {
        id: DeviceId(1),
        model: "i3 digID Mini",
        technology: SensingTechnology::OpticalFtir,
        resolution_dpi: 500.0,
        image_px: (752, 750),
        capture_mm: (81.0, 76.0),
        distortion: DistortionSignature {
            scale: 0.992,
            k_radial: 0.22,
            shear_x: 0.008,
            shear_y: 0.002,
            wave_amp: 0.11,
            wave_freq: 0.52,
            wave_phase: 1.1,
            roll_stretch: 0.0,
        },
        noise: NoiseProfile {
            position_jitter: 0.125,
            direction_kappa: 55.0,
            base_dropout: 0.10,
            spurious_rate: 0.007,
            quality_bias: 0.45,
            vignette_band_mm: 3.0,
        },
    },
    // D2 — L1 Identity Solutions TouchPrint 5300: high-end booking station;
    // clean but with the opposite radial sign to the Cross Match optics.
    Device {
        id: DeviceId(2),
        model: "L1 Identity Solutions TouchPrint 5300",
        technology: SensingTechnology::OpticalFtir,
        resolution_dpi: 500.0,
        image_px: (800, 750),
        capture_mm: (81.0, 76.0),
        distortion: DistortionSignature {
            scale: 1.011,
            k_radial: -0.27,
            shear_x: -0.005,
            shear_y: 0.004,
            wave_amp: 0.10,
            wave_freq: 0.40,
            wave_phase: 2.3,
            roll_stretch: 0.0,
        },
        noise: NoiseProfile {
            position_jitter: 0.090,
            direction_kappa: 80.0,
            base_dropout: 0.058,
            spurious_rate: 0.005,
            quality_bias: 0.1,
            vignette_band_mm: 2.0,
        },
    },
    // D3 — Cross Match Seek II: ruggedized handheld; decent optics but a
    // much smaller window (40.6 x 38.1 mm — drives the {D3,D3} anomaly).
    Device {
        id: DeviceId(3),
        model: "Cross Match Seek II",
        technology: SensingTechnology::OpticalFtir,
        resolution_dpi: 500.0,
        image_px: (800, 750),
        capture_mm: (40.6, 38.1),
        distortion: DistortionSignature {
            scale: 0.997,
            k_radial: 0.40,
            shear_x: 0.009,
            shear_y: -0.007,
            wave_amp: 0.14,
            wave_freq: 0.60,
            wave_phase: 4.0,
            roll_stretch: 0.0,
        },
        noise: NoiseProfile {
            position_jitter: 0.12,
            direction_kappa: 60.0,
            base_dropout: 0.08,
            spurious_rate: 0.007,
            quality_bias: 0.25,
            vignette_band_mm: 6.5,
        },
    },
    // D4 — ink ten-print card, flat-bed scanned at 500 dpi. The rolled
    // impression covers nail-to-nail (large area, operator-guided placement)
    // but ink spread and the rolling motion give it by far the largest
    // distortion signature — the least interoperable source in the paper.
    Device {
        id: DeviceId(4),
        model: "ink ten-print card (flat-bed scan)",
        technology: SensingTechnology::InkTenPrint,
        resolution_dpi: 500.0,
        image_px: (800, 800),
        capture_mm: (40.0, 40.0),
        distortion: DistortionSignature {
            scale: 1.028,
            k_radial: -0.55,
            shear_x: 0.018,
            shear_y: -0.014,
            wave_amp: 0.30,
            wave_freq: 0.35,
            wave_phase: 5.2,
            roll_stretch: 0.068,
        },
        noise: NoiseProfile {
            position_jitter: 0.115,
            direction_kappa: 45.0,
            base_dropout: 0.062,
            spurious_rate: 0.012,
            quality_bias: 0.9,
            vignette_band_mm: 3.0,
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_characteristics_are_verbatim() {
        assert_eq!(DEVICES[0].model, "Cross Match Guardian R2");
        assert_eq!(DEVICES[0].image_px, (800, 750));
        assert_eq!(DEVICES[0].capture_mm, (81.0, 76.0));
        assert_eq!(DEVICES[1].image_px, (752, 750));
        assert_eq!(DEVICES[3].capture_mm, (40.6, 38.1));
        for d in &DEVICES {
            assert_eq!(d.resolution_dpi, 500.0);
        }
    }

    #[test]
    fn ids_match_indices() {
        for (i, d) in DEVICES.iter().enumerate() {
            assert_eq!(d.id.0 as usize, i);
            assert_eq!(Device::by_id(d.id).model, d.model);
        }
    }

    #[test]
    fn pixel_pitch_is_50_microns_at_500dpi() {
        assert!((DEVICES[0].pixel_pitch_mm() - 0.0508).abs() < 1e-4);
    }

    #[test]
    fn only_d4_is_ink() {
        for d in &DEVICES {
            assert_eq!(d.is_ink(), d.id.0 == 4, "{}", d.model);
        }
    }

    #[test]
    fn capture_window_is_centred_with_table1_size() {
        let w = DEVICES[3].capture_window();
        assert!((w.width() - 40.6).abs() < 1e-9);
        assert!((w.height() - 38.1).abs() < 1e-9);
        assert_eq!(w.centre(), Point::ORIGIN);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // device indices are the subject here
    fn cross_device_warp_residuals_exceed_same_device() {
        // The residual between any two distinct optical devices must be
        // larger than within a device (which is zero), and D4's residual to
        // any optical device must be the largest in its row.
        for a in 0..4usize {
            let mut to_ink = 0.0;
            for b in 0..5usize {
                let rms = DEVICES[a]
                    .distortion
                    .rms_difference(&DEVICES[b].distortion, 9.0);
                if a == b {
                    assert_eq!(rms, 0.0);
                } else {
                    assert!(rms > 0.05, "D{a} vs D{b} rms = {rms}");
                    if b == 4 {
                        to_ink = rms;
                    }
                }
            }
            for b in 0..4usize {
                if a != b {
                    let rms = DEVICES[a]
                        .distortion
                        .rms_difference(&DEVICES[b].distortion, 9.0);
                    assert!(
                        to_ink > rms,
                        "D{a}: ink residual {to_ink} not larger than D{b} residual {rms}"
                    );
                }
            }
        }
    }

    #[test]
    fn d1_is_the_noisiest_optical_device() {
        for i in [0usize, 2, 3] {
            assert!(DEVICES[1].noise.position_jitter > DEVICES[i].noise.position_jitter);
            assert!(DEVICES[1].noise.base_dropout > DEVICES[i].noise.base_dropout);
        }
    }
}
