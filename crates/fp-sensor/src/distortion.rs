//! Per-device geometric distortion signatures.
//!
//! Every capture device imposes a fixed smooth warp on the print it sees:
//! lens radial distortion and platen geometry for optical sensors, paper
//! stretch, ink spread and the rolling motion for ink cards. The warp is a
//! property of the *device*, not of the capture — that is what makes
//! interoperability an issue: a matcher can rigidly align two prints but
//! cannot undo the first-order *difference* between two devices' warps
//! (Ross & Nadgir model this same residual with thin-plate splines).

use serde::{Deserialize, Serialize};

use fp_core::geometry::{Point, Vector};

/// A fixed smooth nonlinear warp of platen coordinates.
///
/// Displacement model (all lengths in mm, `q` in platen coordinates):
///
/// ```text
/// w(q) = (scale - 1) * q                            // calibration error
///      + k_radial * (|q|^2 / 100) * unit(q)          // barrel / pincushion
///      + (shear_x * q.y, shear_y * q.x)              // platen shear
///      + wave_amp * (sin(f*q.y + phase), cos(f*q.x + phase))  // flatness ripple
///      + (roll_stretch * q.x, 0)                     // ink roll stretch
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistortionSignature {
    /// Global scale factor (1.0 = perfectly calibrated dpi).
    pub scale: f64,
    /// Radial distortion coefficient: displacement in mm at 10 mm radius.
    pub k_radial: f64,
    /// Horizontal shear coefficient (mm of x-displacement per mm of y).
    pub shear_x: f64,
    /// Vertical shear coefficient (mm of y-displacement per mm of x).
    pub shear_y: f64,
    /// Amplitude (mm) of the platen-flatness ripple.
    pub wave_amp: f64,
    /// Spatial frequency (rad/mm) of the ripple.
    pub wave_freq: f64,
    /// Phase (rad) of the ripple.
    pub wave_phase: f64,
    /// Lateral stretch from rolling the finger (ink cards only; 0 for
    /// live-scan).
    pub roll_stretch: f64,
}

impl DistortionSignature {
    /// The identity signature (an ideal device).
    pub const IDENTITY: DistortionSignature = DistortionSignature {
        scale: 1.0,
        k_radial: 0.0,
        shear_x: 0.0,
        shear_y: 0.0,
        wave_amp: 0.0,
        wave_freq: 0.0,
        wave_phase: 0.0,
        roll_stretch: 0.0,
    };

    /// Displacement vector at platen position `q`.
    pub fn displacement(&self, q: Point) -> Vector {
        let mut w = Vector::new((self.scale - 1.0) * q.x, (self.scale - 1.0) * q.y);
        let r = q.x.hypot(q.y);
        if r > 1e-9 {
            let radial = self.k_radial * (r * r / 100.0) / r;
            w += Vector::new(radial * q.x, radial * q.y);
        }
        w += Vector::new(self.shear_x * q.y, self.shear_y * q.x);
        w += Vector::new(
            self.wave_amp * (self.wave_freq * q.y + self.wave_phase).sin(),
            self.wave_amp * (self.wave_freq * q.x + self.wave_phase).cos(),
        );
        w += Vector::new(self.roll_stretch * q.x, 0.0);
        w
    }

    /// The warped position of `q`.
    pub fn apply(&self, q: Point) -> Point {
        q + self.displacement(q)
    }

    /// Root-mean-square displacement *difference* between two signatures over
    /// a centred disc of the given radius — the residual a rigid-alignment
    /// matcher cannot remove (up to its own rigid re-fit). Useful for
    /// reasoning about interoperability in tests and ablations.
    pub fn rms_difference(&self, other: &DistortionSignature, radius: f64) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        let steps = 12;
        for i in 0..steps {
            for j in 0..steps {
                let x = -radius + 2.0 * radius * (i as f64 + 0.5) / steps as f64;
                let y = -radius + 2.0 * radius * (j as f64 + 0.5) / steps as f64;
                if x * x + y * y > radius * radius {
                    continue;
                }
                let q = Point::new(x, y);
                let d = self.displacement(q) - other.displacement(q);
                sum += d.x * d.x + d.y * d.y;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            (sum / count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_does_not_move_points() {
        let id = DistortionSignature::IDENTITY;
        for (x, y) in [(0.0, 0.0), (5.0, -3.0), (-10.0, 10.0)] {
            let p = Point::new(x, y);
            assert_eq!(id.apply(p), p);
        }
    }

    #[test]
    fn radial_term_grows_quadratically() {
        let sig = DistortionSignature {
            k_radial: 0.3,
            ..DistortionSignature::IDENTITY
        };
        let near = sig.displacement(Point::new(5.0, 0.0)).norm();
        let far = sig.displacement(Point::new(10.0, 0.0)).norm();
        assert!((far / near - 4.0).abs() < 1e-9, "ratio = {}", far / near);
        assert!((far - 0.3).abs() < 1e-9);
    }

    #[test]
    fn rms_difference_is_zero_for_same_signature() {
        let sig = DistortionSignature {
            k_radial: 0.2,
            shear_x: 0.01,
            wave_amp: 0.1,
            wave_freq: 0.5,
            ..DistortionSignature::IDENTITY
        };
        assert_eq!(sig.rms_difference(&sig, 10.0), 0.0);
    }

    #[test]
    fn rms_difference_is_symmetric_and_positive() {
        let a = DistortionSignature {
            k_radial: 0.25,
            ..DistortionSignature::IDENTITY
        };
        let b = DistortionSignature {
            k_radial: -0.25,
            ..DistortionSignature::IDENTITY
        };
        let ab = a.rms_difference(&b, 10.0);
        let ba = b.rms_difference(&a, 10.0);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.1, "rms = {ab}");
    }

    #[test]
    fn roll_stretch_widens_only_x() {
        let sig = DistortionSignature {
            roll_stretch: 0.05,
            ..DistortionSignature::IDENTITY
        };
        let p = sig.apply(Point::new(10.0, 7.0));
        assert!((p.x - 10.5).abs() < 1e-12);
        assert!((p.y - 7.0).abs() < 1e-12);
    }

    #[test]
    fn scale_term_is_isotropic() {
        let sig = DistortionSignature {
            scale: 1.01,
            ..DistortionSignature::IDENTITY
        };
        let p = sig.apply(Point::new(10.0, -10.0));
        assert!((p.x - 10.1).abs() < 1e-12);
        assert!((p.y + 10.1).abs() < 1e-12);
    }
}
