//! Property-based tests of the core geometry and template invariants.

use fp_core::geometry::{Direction, Orientation, Point, Rect, RigidMotion, Vector};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::template::Template;
use proptest::prelude::*;

const PI: f64 = std::f64::consts::PI;

fn finite_angle() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (-40.0..40.0f64, -40.0..40.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn motion() -> impl Strategy<Value = RigidMotion> {
    (finite_angle(), -20.0..20.0f64, -20.0..20.0f64)
        .prop_map(|(r, x, y)| RigidMotion::new(Direction::from_radians(r), Vector::new(x, y)))
}

proptest! {
    // ---- Direction: circle-group laws -------------------------------------

    #[test]
    fn direction_is_canonical(a in finite_angle()) {
        let d = Direction::from_radians(a);
        prop_assert!(d.radians() > -PI && d.radians() <= PI);
    }

    #[test]
    fn direction_rotation_composes(a in finite_angle(), b in finite_angle(), c in finite_angle()) {
        let d = Direction::from_radians(a);
        let once = d.rotated(b).rotated(c);
        let combined = d.rotated(b + c);
        prop_assert!(once.separation(combined) < 1e-9);
    }

    #[test]
    fn signed_delta_is_antisymmetric(a in finite_angle(), b in finite_angle()) {
        let x = Direction::from_radians(a);
        let y = Direction::from_radians(b);
        let forward = x.signed_delta(y);
        let backward = y.signed_delta(x);
        // Antisymmetric except at the boundary value pi (its own negation
        // wraps back to pi).
        if forward.abs() < PI - 1e-9 {
            prop_assert!((forward + backward).abs() < 1e-9);
        }
    }

    #[test]
    fn separation_is_a_metric_on_the_circle(a in finite_angle(), b in finite_angle(), c in finite_angle()) {
        let x = Direction::from_radians(a);
        let y = Direction::from_radians(b);
        let z = Direction::from_radians(c);
        prop_assert!(x.separation(y) >= 0.0);
        prop_assert!((x.separation(y) - y.separation(x)).abs() < 1e-12);
        prop_assert!(x.separation(z) <= x.separation(y) + y.separation(z) + 1e-9);
    }

    // ---- Orientation: half-circle laws -------------------------------------

    #[test]
    fn orientation_is_canonical(a in finite_angle()) {
        let o = Orientation::from_radians(a);
        prop_assert!(o.radians() >= 0.0 && o.radians() < PI);
    }

    #[test]
    fn orientation_is_pi_periodic(a in finite_angle()) {
        let o1 = Orientation::from_radians(a);
        let o2 = Orientation::from_radians(a + PI);
        prop_assert!(o1.separation(o2) < 1e-9);
    }

    #[test]
    fn orientation_separation_bounded_by_right_angle(a in finite_angle(), b in finite_angle()) {
        let s = Orientation::from_radians(a).separation(Orientation::from_radians(b));
        prop_assert!((0.0..=PI / 2.0 + 1e-12).contains(&s));
    }

    // ---- RigidMotion: group action ------------------------------------------

    #[test]
    fn motion_preserves_distances(m in motion(), p in point(), q in point()) {
        let before = p.distance(&q);
        let after = m.apply(&p).distance(&m.apply(&q));
        prop_assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn motion_inverse_is_identity(m in motion(), p in point()) {
        let back = m.inverse().apply(&m.apply(&p));
        prop_assert!(p.distance(&back) < 1e-9);
    }

    #[test]
    fn motion_composition_matches_sequential_application(
        m1 in motion(), m2 in motion(), p in point()
    ) {
        let sequential = m2.apply(&m1.apply(&p));
        let composed = m1.then(&m2).apply(&p);
        prop_assert!(sequential.distance(&composed) < 1e-9);
    }

    #[test]
    fn motion_rotates_directions_consistently(m in motion(), a in finite_angle()) {
        let d = Direction::from_radians(a);
        let rotated = m.apply_direction(d);
        prop_assert!(
            (rotated.signed_delta(d) - m.rotation_part().signed_delta(Direction::ZERO)).abs()
                < 1e-9
        );
    }

    // ---- Rect ---------------------------------------------------------------

    #[test]
    fn rect_intersection_is_contained_in_both(p1 in point(), p2 in point(), p3 in point(), p4 in point()) {
        let a = Rect::from_corners(p1, p2);
        let b = Rect::from_corners(p3, p4);
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.area() <= a.area() + 1e-9);
            prop_assert!(i.area() <= b.area() + 1e-9);
            prop_assert!(a.contains(&i.centre()));
            prop_assert!(b.contains(&i.centre()));
        }
    }

    #[test]
    fn rect_union_contains_both(p1 in point(), p2 in point(), p3 in point(), p4 in point()) {
        let a = Rect::from_corners(p1, p2);
        let b = Rect::from_corners(p3, p4);
        let u = a.union(&b);
        prop_assert!(u.contains(&a.min()) && u.contains(&a.max()));
        prop_assert!(u.contains(&b.min()) && u.contains(&b.max()));
    }

    // ---- Template -----------------------------------------------------------

    #[test]
    fn template_transform_preserves_minutiae_count_and_reliability(
        m in motion(),
        points in prop::collection::vec((point(), finite_angle(), 0.0..1.0f64), 0..40)
    ) {
        let minutiae: Vec<Minutia> = points
            .iter()
            .map(|(p, a, r)| Minutia::new(*p, Direction::from_radians(*a), MinutiaKind::RidgeEnding, *r))
            .collect();
        let t = Template::builder(500.0)
            .capture_window_mm(100.0, 100.0)
            .extend(minutiae)
            .build()
            .unwrap();
        let moved = t.transformed(&m);
        prop_assert_eq!(moved.len(), t.len());
        prop_assert!((moved.mean_reliability() - t.mean_reliability()).abs() < 1e-12);
    }

    #[test]
    fn template_crop_never_grows(
        points in prop::collection::vec(point(), 0..40),
        w in 1.0..30.0f64,
        h in 1.0..30.0f64,
    ) {
        let minutiae: Vec<Minutia> = points
            .iter()
            .map(|p| Minutia::new(*p, Direction::ZERO, MinutiaKind::Bifurcation, 1.0))
            .collect();
        let t = Template::builder(500.0)
            .capture_window_mm(100.0, 100.0)
            .extend(minutiae)
            .build()
            .unwrap();
        let window = Rect::centred(Point::ORIGIN, w, h).unwrap();
        let cropped = t.cropped(window);
        prop_assert!(cropped.len() <= t.len());
        for m in cropped.minutiae() {
            prop_assert!(window.contains(&m.pos));
        }
    }
}
