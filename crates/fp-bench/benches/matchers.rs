//! Matcher comparison latency: genuine vs impostor pairs, direct vs
//! prepared paths, pair-table vs Hough.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fp_bench::matcher_fixtures;
use fp_core::Matcher;
use fp_match::{HoughMatcher, PairTableMatcher, PreparableMatcher, ScoreCalibration};

fn matcher_benches(c: &mut Criterion) {
    let (gallery, probe, impostor) = matcher_fixtures();

    let mut group = c.benchmark_group("pair_table");
    let matcher = PairTableMatcher::default();
    group.bench_function("genuine_direct", |b| {
        b.iter(|| black_box(matcher.compare(black_box(&gallery), black_box(&probe))))
    });
    group.bench_function("impostor_direct", |b| {
        b.iter(|| black_box(matcher.compare(black_box(&gallery), black_box(&impostor))))
    });
    group.bench_function("prepare", |b| {
        b.iter(|| black_box(matcher.prepare(black_box(&gallery))))
    });
    let pg = matcher.prepare(&gallery);
    let pp = matcher.prepare(&probe);
    let pi = matcher.prepare(&impostor);
    group.bench_function("genuine_prepared", |b| {
        b.iter(|| black_box(matcher.compare_prepared(black_box(&pg), black_box(&pp))))
    });
    group.bench_function("impostor_prepared", |b| {
        b.iter(|| black_box(matcher.compare_prepared(black_box(&pg), black_box(&pi))))
    });
    group.finish();

    let mut group = c.benchmark_group("hough");
    let hough = HoughMatcher::default();
    group.bench_function("genuine", |b| {
        b.iter(|| black_box(hough.compare(black_box(&gallery), black_box(&probe))))
    });
    group.bench_function("impostor", |b| {
        b.iter(|| black_box(hough.compare(black_box(&gallery), black_box(&impostor))))
    });
    group.finish();

    let mut group = c.benchmark_group("calibration");
    let calibrated = ScoreCalibration::default().wrap(PairTableMatcher::default());
    group.bench_function("calibrated_genuine", |b| {
        b.iter(|| black_box(calibrated.compare(black_box(&gallery), black_box(&probe))))
    });
    group.finish();
}

criterion_group!(benches, matcher_benches);
criterion_main!(benches);
