//! Experiment reports: human-readable text plus machine-readable values.

use serde::Serialize;
use serde_json::Value;

/// The outcome of one experiment: a rendered text body for the terminal and
/// a JSON value for EXPERIMENTS.md bookkeeping and regression diffing.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Stable identifier, e.g. `"table5"`.
    pub id: String,
    /// Human-readable title (what the paper calls the artifact).
    pub title: String,
    /// Rendered text body.
    pub body: String,
    /// Machine-readable values.
    pub values: Value,
}

impl Report {
    /// Creates a report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        body: impl Into<String>,
        values: Value,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            body: body.into(),
            values,
        }
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let rule = "=".repeat(72);
        format!(
            "{rule}\n{} — {}\n{rule}\n{}\n",
            self.id, self.title, self.body
        )
    }
}

/// Renders a 5x5 device matrix (rows = gallery device, columns = probe
/// device) with a formatter for each cell.
pub fn render_device_matrix<F>(header: &str, mut cell: F) -> String
where
    F: FnMut(usize, usize) -> String,
{
    let mut out = String::new();
    out.push_str(&format!("{header}\n        "));
    for p in 0..5 {
        out.push_str(&format!("{:>12}", format!("D{p}")));
    }
    out.push('\n');
    for g in 0..5 {
        out.push_str(&format!("  D{g}    "));
        for p in 0..5 {
            out.push_str(&format!("{:>12}", cell(g, p)));
        }
        out.push('\n');
    }
    out
}

/// Renders `(label, count)` rows as a bar chart.
pub fn render_bars(rows: &[(&str, usize)], width: usize) -> String {
    let peak = rows.iter().map(|(_, n)| *n).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (label, n) in rows {
        let bar = "#".repeat((n * width) / peak);
        out.push_str(&format!("  {label:<18} {n:>6} {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_id_and_body() {
        let r = Report::new("t1", "Title", "the body", serde_json::json!({"x": 1}));
        let s = r.render();
        assert!(s.contains("t1"));
        assert!(s.contains("Title"));
        assert!(s.contains("the body"));
    }

    #[test]
    fn device_matrix_has_25_cells() {
        let s = render_device_matrix("m", |g, p| format!("{}", g * 10 + p));
        assert!(s.contains("44"));
        assert!(s.contains("D4"));
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn bars_scale_to_peak() {
        let s = render_bars(&[("a", 10), ("b", 5)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].matches('#').count() == 10);
        assert!(lines[1].matches('#').count() == 5);
    }
}
