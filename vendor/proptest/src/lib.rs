//! Offline vendored stand-in for the `proptest` crate.
//!
//! Covers the subset the workspace's property tests use: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, numeric range strategies, tuples,
//! `prop::collection::vec` and `prop::bool::{ANY, weighted}`.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test function's name), and failing cases
//! are reported but **not shrunk**. Failures print the case number; re-runs
//! are fully reproducible because there is no entropy source.

pub mod strategy;
pub mod test_runner;

/// Strategy modules under their conventional `prop::` paths.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{vec, SizeRange, VecStrategy};
    }
    pub mod bool {
        pub use crate::strategy::bool_strategies::{weighted, Weighted, ANY};
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: functions whose `ident in strategy` arguments
/// are sampled for `ProptestConfig::cases` iterations.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    ::std::panic!(
                        "proptest: test {} failed on case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when `cond` is false (counted as a pass here;
/// real proptest resamples).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn floats_stay_in_range(x in -2.0..3.0f64) {
            prop_assert!((-2.0..3.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_cases_apply(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    proptest! {
        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u64..50, 0u64..50).prop_map(|(x, y)| (x.min(y), x.max(y))),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(a <= b);
            let _ = flag;
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("some_test");
        let mut b = crate::test_runner::TestRng::for_test("some_test");
        let mut c = crate::test_runner::TestRng::for_test("other_test");
        let strat = 0u64..1000;
        let xs: Vec<u64> = (0..16).map(|_| strat.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| strat.sample(&mut b)).collect();
        let zs: Vec<u64> = (0..16).map(|_| strat.sample(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn flat_map_feeds_first_sample_into_second() {
        let strat = (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..5, n..n + 1));
        let mut rng = crate::test_runner::TestRng::for_test("flat_map");
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
