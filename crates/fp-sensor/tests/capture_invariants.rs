//! Randomized invariant tests over the acquisition engine: whatever the
//! seed, subject, or device, every capture must satisfy the structural
//! contracts the rest of the workspace relies on.

use fp_core::ids::{DeviceId, Finger, SessionId};
use fp_sensor::{CaptureProtocol, DEVICES};
use fp_synth::population::{Population, PopulationConfig};

#[test]
fn every_capture_satisfies_structural_invariants() {
    let pop = Population::generate(&PopulationConfig::new(321, 12));
    let protocol = CaptureProtocol::new();
    for subject in pop.subjects() {
        for device in DeviceId::ALL {
            for session in 0..2u8 {
                let imp =
                    protocol.capture(subject, Finger::RIGHT_INDEX, device, SessionId(session));
                let dev = &DEVICES[device.0 as usize];
                let window = dev.capture_window();
                let pitch = dev.pixel_pitch_mm();
                let f = imp.features();

                // 1. Every minutia lies in the capture window, on the pixel
                //    grid, with a valid reliability and finite direction.
                for m in imp.template().minutiae() {
                    assert!(
                        window.contains(&m.pos),
                        "{device}/{session}: {:?} outside",
                        m.pos
                    );
                    let gx = (m.pos.x / pitch).round() * pitch;
                    assert!((m.pos.x - gx).abs() < 1e-9, "off-grid x");
                    assert!((0.0..=1.0).contains(&m.reliability));
                    assert!(m.direction.radians().is_finite());
                }

                // 2. Features are consistent with the template.
                assert_eq!(f.minutia_count, imp.template().len());
                assert!((0.0..=1.0).contains(&f.mean_reliability));
                assert!((0.0..=1.0).contains(&f.captured_area_fraction));
                assert!((0.0..=1.0).contains(&f.clarity));
                assert!((0.0..=1.0).contains(&f.condition_extremity));

                // 3. Template metadata matches the device.
                assert_eq!(imp.template().resolution_dpi(), dev.resolution_dpi);
                assert_eq!(imp.device(), device);
                assert_eq!(imp.session(), SessionId(session));
            }
        }
    }
}

#[test]
fn capture_counts_are_stable_across_the_population() {
    // No device may systematically produce empty or overfull templates.
    let pop = Population::generate(&PopulationConfig::new(77, 30));
    let protocol = CaptureProtocol::new();
    for device in DeviceId::ALL {
        let counts: Vec<usize> = pop
            .subjects()
            .iter()
            .map(|s| {
                protocol
                    .capture(s, Finger::RIGHT_INDEX, device, SessionId(0))
                    .template()
                    .len()
            })
            .collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let empties = counts.iter().filter(|&&c| c < 5).count();
        assert!(
            (10.0..=80.0).contains(&mean),
            "{device}: mean minutiae {mean}"
        );
        assert!(
            empties <= counts.len() / 10,
            "{device}: {empties} near-empty captures of {}",
            counts.len()
        );
    }
}

#[test]
fn habituation_argument_is_clamped_not_trusted() {
    // Out-of-range habituation must not panic or produce invalid conditions.
    let pop = Population::generate(&PopulationConfig::new(5, 1));
    let s = &pop.subjects()[0];
    let dev = fp_sensor::Device::by_id(DeviceId(0));
    for h in [-3.0, 0.0, 0.5, 1.0, 42.0] {
        let imp = fp_sensor::Acquisition.capture(
            &s.master_print(Finger::RIGHT_INDEX),
            &s.skin(),
            dev,
            s.id(),
            Finger::RIGHT_INDEX,
            SessionId(0),
            h,
            &fp_core::rng::SeedTree::new(1),
        );
        let c = imp.condition();
        assert!(
            (0.0..=1.0).contains(&c.pressure),
            "h={h}: pressure {}",
            c.pressure
        );
        assert!((0.0..=1.0).contains(&c.moisture));
    }
}
