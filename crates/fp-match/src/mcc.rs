//! A Minutia-Cylinder-Code–style local-descriptor matcher (Cappelli,
//! Ferrara & Maltoni, 2010 — simplified).
//!
//! Each minutia gets a **cylinder**: a fixed-size descriptor over a local
//! spatial grid (in the minutia's own rotated frame, so the descriptor is
//! rotation/translation invariant by construction) crossed with a
//! directional grid. Every neighbouring minutia contributes Gaussian mass
//! to the cells near its relative position and relative direction.
//! Matching compares cylinders with a normalized Euclidean similarity,
//! extracts the best one-to-one pairs (local-similarity-sort), and scores
//! by their mean similarity weighted by the number of confident pairs.
//!
//! This matcher is algorithmically independent of both the pair-table
//! matcher (global relative geometry) and the Hough matcher (explicit
//! alignment), which is exactly what the paper's "diverse matchers"
//! future-work question needs.

use serde::{Deserialize, Serialize};

use fp_core::template::Template;
use fp_core::{MatchScore, Matcher};

use crate::PreparableMatcher;

/// Tuning parameters for [`MccMatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MccConfig {
    /// Cylinder radius (mm): how far neighbours contribute.
    pub radius: f64,
    /// Spatial grid resolution per axis (cells across the cylinder).
    pub spatial_cells: usize,
    /// Number of directional cells over the full circle.
    pub angular_cells: usize,
    /// Spatial Gaussian bandwidth (mm).
    pub sigma_s: f64,
    /// Directional Gaussian bandwidth (radians).
    pub sigma_d: f64,
    /// Minimum neighbours inside the cylinder for it to be *valid*;
    /// descriptors built from fewer carry no evidence.
    pub min_neighbours: usize,
    /// Fraction of the smaller template's minutiae used as the number of
    /// top pairs averaged into the score.
    pub top_pair_fraction: f64,
    /// Scale applied to the mean similarity so MCC raw scores live on
    /// roughly the same axis as the other matchers.
    pub score_scale: f64,
}

impl Default for MccConfig {
    fn default() -> Self {
        MccConfig {
            radius: 5.0,
            spatial_cells: 8,
            angular_cells: 5,
            sigma_s: 1.0,
            sigma_d: 0.5,
            min_neighbours: 2,
            top_pair_fraction: 0.4,
            score_scale: 40.0,
        }
    }
}

/// One minutia's cylinder descriptor.
#[derive(Debug, Clone)]
struct Cylinder {
    cells: Vec<f32>,
    norm: f32,
    valid: bool,
}

/// A template pre-processed into its cylinder set.
#[derive(Debug, Clone)]
pub struct PreparedCylinders {
    cylinders: Vec<Cylinder>,
    minutia_count: usize,
}

impl PreparedCylinders {
    /// Number of valid cylinders.
    pub fn valid_count(&self) -> usize {
        self.cylinders.iter().filter(|c| c.valid).count()
    }

    /// Number of minutiae in the originating template.
    pub fn minutia_count(&self) -> usize {
        self.minutia_count
    }

    /// Read access to the raw descriptors as `(cells, valid)` pairs, in
    /// minutia order. `fp-index` pools and binarizes these into packed
    /// bit-vector signatures for its Hamming prefilter; the cells of an
    /// invalid cylinder carry no evidence and should be skipped.
    pub fn cylinders(&self) -> impl Iterator<Item = (&[f32], bool)> {
        self.cylinders.iter().map(|c| (c.cells.as_slice(), c.valid))
    }
}

/// The MCC-style matcher. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct MccMatcher {
    config: MccConfig,
    metrics: crate::metrics::MccMetrics,
}

impl MccMatcher {
    /// Creates a matcher with explicit tuning parameters.
    pub fn new(config: MccConfig) -> Self {
        MccMatcher {
            config,
            metrics: Default::default(),
        }
    }

    /// Registers this matcher's work counters (comparisons, valid
    /// descriptors per template) on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &fp_telemetry::Telemetry) -> Self {
        self.metrics = crate::metrics::MccMetrics::new(telemetry);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MccConfig {
        &self.config
    }

    fn cell_count(&self) -> usize {
        self.config.spatial_cells * self.config.spatial_cells * self.config.angular_cells
    }

    fn build_cylinders(&self, template: &Template) -> PreparedCylinders {
        let cfg = &self.config;
        let ms = template.minutiae();
        let n_cells = self.cell_count();
        let cell_size = 2.0 * cfg.radius / cfg.spatial_cells as f64;
        let ang_size = std::f64::consts::TAU / cfg.angular_cells as f64;

        let cylinders = ms
            .iter()
            .map(|centre| {
                let mut cells = vec![0.0f32; n_cells];
                let mut neighbours = 0usize;
                let frame = centre.direction;
                let (fc, fs) = (frame.radians().cos(), frame.radians().sin());
                for other in ms {
                    if std::ptr::eq(centre, other) {
                        continue;
                    }
                    let d = other.pos - centre.pos;
                    if d.norm() > cfg.radius {
                        continue;
                    }
                    neighbours += 1;
                    // Rotate into the centre minutia's frame.
                    let lx = d.x * fc + d.y * fs;
                    let ly = -d.x * fs + d.y * fc;
                    let rel_dir = other.direction.signed_delta(frame);
                    // Gaussian mass over the 3x3x3 cell neighbourhood of the
                    // contribution point.
                    let cx = ((lx + cfg.radius) / cell_size).floor() as isize;
                    let cy = ((ly + cfg.radius) / cell_size).floor() as isize;
                    let ca = ((rel_dir + std::f64::consts::PI) / ang_size).floor() as isize;
                    for dz in -1..=1isize {
                        for dy in -1..=1isize {
                            for dx in -1..=1isize {
                                let gx = cx + dx;
                                let gy = cy + dy;
                                let ga = (ca + dz).rem_euclid(cfg.angular_cells as isize);
                                if gx < 0
                                    || gy < 0
                                    || gx >= cfg.spatial_cells as isize
                                    || gy >= cfg.spatial_cells as isize
                                {
                                    continue;
                                }
                                // Cell centre in local coordinates.
                                let ccx = (gx as f64 + 0.5) * cell_size - cfg.radius;
                                let ccy = (gy as f64 + 0.5) * cell_size - cfg.radius;
                                let cca = (ga as f64 + 0.5) * ang_size - std::f64::consts::PI;
                                let ds2 = (lx - ccx).powi(2) + (ly - ccy).powi(2);
                                let mut da = (rel_dir - cca).rem_euclid(std::f64::consts::TAU);
                                if da > std::f64::consts::PI {
                                    da -= std::f64::consts::TAU;
                                }
                                let mass = (-ds2 / (2.0 * cfg.sigma_s * cfg.sigma_s)
                                    - da * da / (2.0 * cfg.sigma_d * cfg.sigma_d))
                                    .exp() as f32;
                                let idx = (ga as usize * cfg.spatial_cells + gy as usize)
                                    * cfg.spatial_cells
                                    + gx as usize;
                                cells[idx] += mass;
                            }
                        }
                    }
                }
                // Saturate cell mass (MCC uses a sigmoid; a clamp is enough).
                for c in &mut cells {
                    *c = c.min(1.0);
                }
                let norm = cells.iter().map(|c| c * c).sum::<f32>().sqrt();
                Cylinder {
                    cells,
                    norm,
                    valid: neighbours >= cfg.min_neighbours && norm > 1e-6,
                }
            })
            .collect();
        let prepared = PreparedCylinders {
            cylinders,
            minutia_count: ms.len(),
        };
        self.metrics
            .valid_cylinders
            .record(prepared.valid_count() as u64);
        prepared
    }

    /// Normalized Euclidean similarity between two cylinders, in `[0, 1]`.
    fn similarity(a: &Cylinder, b: &Cylinder) -> f32 {
        if !a.valid || !b.valid {
            return 0.0;
        }
        let dist: f32 = a
            .cells
            .iter()
            .zip(&b.cells)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        let denom = a.norm + b.norm;
        if denom <= 1e-6 {
            0.0
        } else {
            (1.0 - dist / denom).max(0.0)
        }
    }

    fn score_cylinders(
        &self,
        gallery: &PreparedCylinders,
        probe: &PreparedCylinders,
    ) -> MatchScore {
        self.metrics.comparisons.incr();
        let ng = gallery.cylinders.len();
        let np = probe.cylinders.len();
        if ng == 0 || np == 0 {
            return MatchScore::ZERO;
        }
        // Local similarity matrix; keep the best pairs, one-to-one.
        let mut pairs: Vec<(f32, usize, usize)> = Vec::new();
        for (i, a) in gallery.cylinders.iter().enumerate() {
            for (j, b) in probe.cylinders.iter().enumerate() {
                let s = Self::similarity(a, b);
                if s > 0.05 {
                    pairs.push((s, i, j));
                }
            }
        }
        if pairs.is_empty() {
            return MatchScore::ZERO;
        }
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("similarity is finite"));
        let top = ((ng.min(np) as f64 * self.config.top_pair_fraction).ceil() as usize).max(3);
        let mut g_used = vec![false; ng];
        let mut p_used = vec![false; np];
        let mut taken = 0usize;
        let mut total = 0.0f64;
        for (s, i, j) in pairs {
            if taken >= top {
                break;
            }
            if g_used[i] || p_used[j] {
                continue;
            }
            g_used[i] = true;
            p_used[j] = true;
            taken += 1;
            total += s as f64;
        }
        if taken < 3 {
            return MatchScore::ZERO;
        }
        // Mean of the selected local similarities, weighted by how many of
        // the requested top pairs were actually found.
        let mean = total / taken as f64;
        let coverage = taken as f64 / top as f64;
        MatchScore::new(mean * coverage * self.config.score_scale)
    }
}

impl Matcher for MccMatcher {
    fn compare(&self, gallery: &Template, probe: &Template) -> MatchScore {
        self.score_cylinders(&self.build_cylinders(gallery), &self.build_cylinders(probe))
    }

    fn name(&self) -> &str {
        "mcc"
    }
}

impl PreparableMatcher for MccMatcher {
    type Prepared = PreparedCylinders;

    fn prepare(&self, template: &Template) -> PreparedCylinders {
        self.build_cylinders(template)
    }

    fn compare_prepared(
        &self,
        gallery: &PreparedCylinders,
        probe: &PreparedCylinders,
    ) -> MatchScore {
        self.score_cylinders(gallery, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::geometry::{Direction, Point, RigidMotion, Vector};
    use fp_core::minutia::{Minutia, MinutiaKind};
    use fp_core::rng::SeedTree;
    use rand::Rng;

    fn synthetic_template(seed: u64, n: usize) -> Template {
        let mut rng = SeedTree::new(seed).rng();
        let mut minutiae: Vec<Minutia> = Vec::new();
        let mut attempts = 0;
        while minutiae.len() < n && attempts < 10_000 {
            attempts += 1;
            let pos = Point::new(
                rng.gen::<f64>() * 16.0 - 8.0,
                rng.gen::<f64>() * 20.0 - 10.0,
            );
            if minutiae.iter().any(|m| m.pos.distance(&pos) < 1.4) {
                continue;
            }
            minutiae.push(Minutia::new(
                pos,
                Direction::from_radians(rng.gen::<f64>() * std::f64::consts::TAU),
                MinutiaKind::RidgeEnding,
                1.0,
            ));
        }
        Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(minutiae)
            .build()
            .unwrap()
    }

    #[test]
    fn self_match_beats_impostor() {
        let m = MccMatcher::default();
        let a = synthetic_template(1, 32);
        let b = synthetic_template(2, 32);
        let self_score = m.compare(&a, &a).value();
        let impostor = m.compare(&a, &b).value();
        assert!(
            self_score > impostor + 5.0,
            "self {self_score:.1} vs impostor {impostor:.1}"
        );
    }

    #[test]
    fn descriptor_is_rotation_invariant() {
        let m = MccMatcher::default();
        let t = synthetic_template(3, 30);
        let moved = t.transformed(&RigidMotion::new(
            Direction::from_radians(1.1),
            Vector::new(4.0, -3.0),
        ));
        let self_score = m.compare(&t, &t).value();
        let moved_score = m.compare(&t, &moved).value();
        assert!(
            (self_score - moved_score).abs() < self_score * 0.05 + 0.5,
            "self {self_score:.1} vs moved {moved_score:.1}"
        );
    }

    #[test]
    fn empty_and_sparse_templates_score_zero() {
        let m = MccMatcher::default();
        let empty = Template::builder(500.0).build().unwrap();
        let sparse = synthetic_template(4, 2);
        let full = synthetic_template(5, 30);
        assert_eq!(m.compare(&empty, &full).value(), 0.0);
        assert_eq!(m.compare(&full, &empty).value(), 0.0);
        // Two isolated minutiae: no cylinder reaches min_neighbours.
        assert_eq!(m.compare(&sparse, &sparse).value(), 0.0);
    }

    #[test]
    fn prepared_path_matches_direct() {
        let m = MccMatcher::default();
        let a = synthetic_template(6, 28);
        let b = synthetic_template(7, 28);
        let pa = m.prepare(&a);
        let pb = m.prepare(&b);
        assert_eq!(m.compare(&a, &b), m.compare_prepared(&pa, &pb));
    }

    #[test]
    fn jitter_degrades_gracefully() {
        let m = MccMatcher::default();
        let t = synthetic_template(8, 32);
        let mut rng = SeedTree::new(80).rng();
        let jittered: Vec<Minutia> = t
            .minutiae()
            .iter()
            .map(|mi| {
                Minutia::new(
                    Point::new(
                        mi.pos.x + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                        mi.pos.y + fp_core::dist::normal(&mut rng, 0.0, 0.12),
                    ),
                    mi.direction
                        .rotated(fp_core::dist::normal(&mut rng, 0.0, 0.06)),
                    mi.kind,
                    mi.reliability,
                )
            })
            .collect();
        let jt = Template::builder(500.0)
            .capture_window_mm(20.0, 24.0)
            .extend(jittered)
            .build()
            .unwrap();
        let self_score = m.compare(&t, &t).value();
        let jitter_score = m.compare(&t, &jt).value();
        let impostor = m.compare(&t, &synthetic_template(9, 32)).value();
        assert!(
            jitter_score > self_score * 0.55,
            "jitter {jitter_score:.1} self {self_score:.1}"
        );
        assert!(
            jitter_score > impostor,
            "jitter {jitter_score:.1} impostor {impostor:.1}"
        );
    }

    #[test]
    fn valid_count_reflects_neighbourhoods() {
        let m = MccMatcher::default();
        let dense = m.prepare(&synthetic_template(10, 35));
        assert!(dense.valid_count() > dense.minutia_count() / 2);
        let sparse = m.prepare(&synthetic_template(11, 3));
        assert!(sparse.valid_count() <= sparse.minutia_count());
    }
}
