//! Tiny data-parallel helper on `std::thread::scope` — no extra runtime
//! dependency for the score-matrix computation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fp_telemetry::{StageRecorder, Telemetry, WorkerStats};

/// Applies `f` to every index in `0..n`, in parallel across the machine's
/// cores, collecting results in index order.
///
/// `f` is called exactly once per index (work-stealing via an atomic
/// counter), so it may be expensive; it must be `Sync` because multiple
/// worker threads share it.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_metered(n, &Telemetry::disabled(), "", f)
}

/// [`parallel_map`] with telemetry: records the stage's wall time plus each
/// worker thread's item count, busy time and utilization under `stage`.
/// When `telemetry` is disabled the per-item clock reads are skipped and
/// nothing is recorded.
pub fn parallel_map_metered<T, F>(n: usize, telemetry: &Telemetry, stage: &str, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let recorder = StageRecorder::start(telemetry, stage);
    let timed = recorder.is_enabled();
    // Capture the spawning thread's span as the parent for worker-side
    // spans, so the trace tree stays connected across the thread hop.
    let ctx = telemetry.trace_ctx();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        let _lane = if timed {
            Some(telemetry.worker_span(stage, &[("worker", "0".to_string())]))
        } else {
            None
        };
        let mut stats = WorkerStats::default();
        let out = (0..n)
            .map(|i| {
                if timed {
                    let start = Instant::now();
                    let value = f(i);
                    stats.record(start.elapsed());
                    value
                } else {
                    f(i)
                }
            })
            .collect();
        recorder.finish(vec![stats]);
        return out;
    }
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // SAFETY-free sharing: each worker writes disjoint slots; we hand out
    // slot ownership through a Mutex-free pattern by collecting into
    // per-thread vectors instead.
    let results: Vec<(Vec<(usize, T)>, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let (ctx, counter, f) = (&ctx, &counter, &f);
                scope.spawn(move || {
                    let _adopt = telemetry.in_ctx(ctx);
                    // Trace-only: shows each worker's lane on the timeline
                    // without adding a segment to the dotted histogram
                    // paths of the spans `f` opens.
                    let _lane = if timed {
                        Some(telemetry.worker_span(stage, &[("worker", w.to_string())]))
                    } else {
                        None
                    };
                    let mut local = Vec::new();
                    let mut stats = WorkerStats::default();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if timed {
                            let start = Instant::now();
                            local.push((i, f(i)));
                            stats.record(start.elapsed());
                        } else {
                            local.push((i, f(i)));
                        }
                    }
                    (local, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut workers = Vec::with_capacity(results.len());
    for (chunk, stats) in results {
        workers.push(stats);
        for (i, value) in chunk {
            slots[i] = Some(value);
        }
    }
    recorder.finish(workers);
    slots
        .into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_all_indices_in_order() {
        let out = parallel_map(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn each_index_visited_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..500).map(|_| AtomicU32::new(0)).collect();
        let _ = parallel_map(500, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn metered_map_records_stage_with_all_items() {
        let t = Telemetry::enabled();
        let out = parallel_map_metered(300, &t, "demo", |i| i + 1);
        assert_eq!(out.len(), 300);
        let stages = t.snapshot().stages;
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].stage, "demo");
        assert_eq!(stages[0].items, 300);
        assert_eq!(stages[0].threads.iter().map(|w| w.items).sum::<u64>(), 300);
    }

    #[test]
    fn metered_map_connects_worker_spans_to_the_calling_span() {
        let t = Telemetry::enabled();
        {
            let _stage = t.span("stage");
            let _ = parallel_map_metered(64, &t, "stage.items", |i| {
                let _item = t.span_with("item", &[("i", i.to_string())]);
                i
            });
        }
        let trace = t.trace_snapshot();
        assert_eq!(trace.validate_tree().expect("well-formed"), 1);
        let stage = trace.spans.iter().find(|s| s.name == "stage").unwrap();
        let lanes: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "stage.items")
            .collect();
        assert!(!lanes.is_empty());
        for lane in &lanes {
            assert_eq!(lane.parent, Some(stage.id));
        }
        let items = trace.spans.iter().filter(|s| s.name == "item").count();
        assert_eq!(items, 64);
        // Worker lanes are trace-only: item histogram paths are unchanged.
        assert_eq!(t.snapshot().durations["item"].count, 64);
    }

    #[test]
    fn metered_map_with_disabled_telemetry_records_nothing() {
        let t = Telemetry::disabled();
        let out = parallel_map_metered(50, &t, "quiet", |i| i);
        assert_eq!(out.len(), 50);
        assert!(t.snapshot().stages.is_empty());
    }
}
