//! Golden regression tests: exact pinned values for the study's headline
//! numbers at a small fixed scale, plus same-seed determinism of the
//! identification experiment.
//!
//! The pinned constants were produced by this same code; they exist to make
//! *any* behavioral drift in the pipeline (synthesis, capture, matching,
//! calibration, indexing) fail loudly. If a deliberate change moves them,
//! re-pin and say so in the commit.

use fp_core::ids::DeviceId;
use fp_study::config::StudyConfig;
use fp_study::experiments;
use fp_study::scores::StudyData;
use fp_telemetry::Telemetry;

/// The golden scale: small enough to run in seconds, big enough that every
/// statistic has real input.
fn golden_config() -> StudyConfig {
    StudyConfig::builder()
        .subjects(16)
        .seed(42)
        .impostors_per_cell(60)
        .build()
}

fn golden_data() -> StudyData {
    StudyData::generate(&golden_config())
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn genuine_score_means_are_pinned() {
    let data = golden_data();
    let dmg = mean(&data.scores.dmg());
    let ddmg = mean(&data.scores.ddmg());
    println!("dmg mean:  {dmg:?}");
    println!("ddmg mean: {ddmg:?}");
    assert!(
        (dmg - GOLDEN_DMG_MEAN).abs() < 1e-9,
        "DMG mean drifted: {dmg:?}"
    );
    assert!(
        (ddmg - GOLDEN_DDMG_MEAN).abs() < 1e-9,
        "DDMG mean drifted: {ddmg:?}"
    );
    // The paper's core finding at any scale: cross-device genuine scores
    // sit below same-device ones.
    assert!(ddmg < dmg);
}

#[test]
fn fnmr_at_fmr_cell_is_pinned() {
    let data = golden_data();
    // D1 gallery vs D4 probe (live-scan enrollment, card-scan probe): the
    // one golden-scale cell with a nonzero FNMR at the paper's fixed FMR.
    let cell = data
        .scores
        .score_set(DeviceId(1), DeviceId(4))
        .fnmr_at_fmr(golden_config().table5_fmr);
    println!("fnmr@fmr (D1 gallery, D4 probe): {cell:?}");
    assert!(
        (cell - GOLDEN_FNMR_D1_D4).abs() < 1e-12,
        "FNMR@FMR cell drifted: {cell:?}"
    );
}

#[test]
fn identification_rank1_rates_are_pinned() {
    let data = golden_data();
    let report = experiments::run("ext-identification", &data).expect("known id");
    let rows = report.values["rows"].as_array().unwrap();
    let rank1: Vec<f64> = rows.iter().map(|r| r["rank1"].as_f64().unwrap()).collect();
    println!("rank1 rates: {rank1:?}");
    for (got, want) in rank1.iter().zip(GOLDEN_RANK1) {
        assert!(
            (got - want).abs() < 1e-12,
            "rank-1 rates drifted: {rank1:?}"
        );
    }
}

#[test]
fn identification_report_is_deterministic_and_telemetry_neutral() {
    // Two independent full runs from the same seed — plus one with live
    // telemetry — must produce byte-identical rank vectors and reports.
    let a = experiments::run("ext-identification", &golden_data()).unwrap();
    let b = experiments::run("ext-identification", &golden_data()).unwrap();
    let telemetry = Telemetry::enabled();
    let c = experiments::run_with("ext-identification", &golden_data(), &telemetry).unwrap();

    let json_a = serde_json::to_string(&a).unwrap();
    let json_b = serde_json::to_string(&b).unwrap();
    let json_c = serde_json::to_string(&c).unwrap();
    assert_eq!(json_a, json_b, "same-seed reports differ");
    assert_eq!(json_a, json_c, "telemetry changed the report");
    assert_eq!(
        serde_json::to_string(&a.values["ranks"]).unwrap(),
        serde_json::to_string(&b.values["ranks"]).unwrap(),
        "rank vectors differ"
    );
    // The instrumented run must actually have recorded index work.
    let snap = telemetry.snapshot();
    assert_eq!(snap.counters["index.enrolled"], 16);
    assert!(snap.counters["index.searches"] > 0);

    // Per-search shortlist-quality histograms: one record per search, and
    // their exact sums must reproduce the global counters (work measures
    // are deterministic, so sums — not just counts — line up).
    let searches = snap.counters["index.searches"];
    let hamming = &snap.values["index.search.hamming_ops_per_search"];
    assert_eq!(hamming.count, searches);
    assert_eq!(hamming.sum, snap.counters["index.search.hamming_ops"]);
    let bucket_hits = &snap.values["index.search.bucket_hits_per_search"];
    assert_eq!(bucket_hits.count, searches);
    assert_eq!(bucket_hits.sum, snap.counters["index.search.bucket_hits"]);
}

const GOLDEN_DMG_MEAN: f64 = 30.10882426039874;
const GOLDEN_DDMG_MEAN: f64 = 24.88104145864004;
const GOLDEN_FNMR_D1_D4: f64 = 0.125;
const GOLDEN_RANK1: [f64; 5] = [1.0, 0.9375, 1.0, 1.0, 1.0];
