//! Offline vendored stand-in for the `serde_json` crate.
//!
//! Speaks the mini-serde [`Content`](serde::Content) tree and provides the
//! pieces the workspace uses: [`Value`] with its accessors and indexing, the
//! [`json!`] macro, compact and pretty printing, a strict JSON parser, and
//! the `to_string`/`to_string_pretty`/`from_str`/`to_value` entry points.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

#[macro_use]
mod macros;
mod parser;
mod print;
mod value;

pub use value::{Map, Number, Value};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_content()))
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_content()))
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parser::parse(s)?;
    T::from_content(&content).map_err(Error::new)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_content(value.to_content()))
}

impl Value {
    pub(crate) fn from_content(content: Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::Number(Number::from(v)),
            Content::I64(v) => Value::Number(Number::from(v)),
            Content::F64(v) => Value::Number(Number::from_f64_lossy(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => {
                let mut map = Map::new();
                for (k, v) in entries {
                    map.insert(k, Value::from_content(v));
                }
                Value::Object(map)
            }
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => n.to_content(),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(Value::from_content(content.clone()))
    }
}
