//! **Figure 1** — age and ethnicity of the participants.
//!
//! The paper reports 494 randomly selected participants, 53% aged 20–29 and
//! 57.2% Caucasian. Our synthetic cohort is drawn from exactly those
//! marginals, so this report is the demographic audit of the run.

use serde_json::json;

use crate::report::{render_bars, Report};
use crate::scores::StudyData;

/// Runs the experiment.
pub fn run(data: &StudyData) -> Report {
    let pop = data.dataset.population();
    let age = pop.age_histogram();
    let ethnicity = pop.ethnicity_histogram();
    let n = pop.len() as f64;

    let twenties = age
        .iter()
        .find(|(label, _)| *label == "20-29")
        .map(|(_, c)| *c)
        .unwrap_or(0) as f64
        / n;
    let caucasian = ethnicity
        .iter()
        .find(|(label, _)| *label == "Caucasian")
        .map(|(_, c)| *c)
        .unwrap_or(0) as f64
        / n;

    let mut body = format!("participants: {}\n\nage groups:\n", pop.len());
    body.push_str(&render_bars(&age, 40));
    body.push_str("\nethnicity groups:\n");
    body.push_str(&render_bars(&ethnicity, 40));
    body.push_str(&format!(
        "\nages 20-29: {:.1}% (paper: 53%)\nCaucasian:  {:.1}% (paper: 57.2%)\n",
        twenties * 100.0,
        caucasian * 100.0
    ));

    Report::new(
        "fig1",
        "Demographics of the cohort (paper Figure 1)",
        body,
        json!({
            "subjects": pop.len(),
            "age": age.iter().map(|(l, c)| json!({"group": l, "count": c})).collect::<Vec<_>>(),
            "ethnicity": ethnicity.iter().map(|(l, c)| json!({"group": l, "count": c})).collect::<Vec<_>>(),
            "fraction_twenties": twenties,
            "fraction_caucasian": caucasian,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::testdata;

    #[test]
    fn report_counts_cover_cohort() {
        let r = run(testdata::small());
        let total: u64 = r.values["age"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v["count"].as_u64().unwrap())
            .sum();
        assert_eq!(total, r.values["subjects"].as_u64().unwrap());
    }

    #[test]
    fn fractions_are_probabilities() {
        let r = run(testdata::small());
        let t = r.values["fraction_twenties"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&t));
    }
}
