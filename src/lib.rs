//! # fingerprint-interop
//!
//! A complete, from-scratch Rust reproduction of the measurement system behind
//! *"Interoperability in Fingerprint Recognition: A Large-Scale Empirical
//! Study"* (Lugini, Marasco, Cukic & Gashi, DSN 2013).
//!
//! The paper studied how fingerprint match scores and error rates degrade when
//! the *gallery* (enrollment) and *probe* (verification) images come from
//! different capture devices. Its pipeline — human subjects, commercial
//! sensors, the Identix BioEngine matcher, NIST NFIQ — is entirely closed, so
//! this workspace rebuilds each stage as an explicit, testable model:
//!
//! | stage | crate |
//! |-------|-------|
//! | finger identities (synthetic master prints) | [`fp_synth`] |
//! | raster rendering & minutiae re-extraction | [`fp_image`] |
//! | capture devices D0–D4 and acquisition physics | [`fp_sensor`] |
//! | NFIQ-like quality levels 1–5 | [`fp_quality`] |
//! | minutiae matchers (pair-table + Hough baseline) | [`fp_match`] |
//! | 1:N candidate indexing (shortlist + exact re-rank) | [`fp_index`] |
//! | biometric statistics (FMR/FNMR, Kendall τ, bootstrap) | [`fp_stats`] |
//! | spans, counters & pipeline metrics | [`fp_telemetry`] |
//! | the study harness reproducing every table & figure | [`fp_study`] |
//!
//! This facade crate re-exports all of them so applications can depend on a
//! single package.
//!
//! ## Quickstart
//!
//! ```
//! use fingerprint_interop::prelude::*;
//!
//! // A miniature version of the paper's study: enroll with one device,
//! // verify with another, and observe the genuine score drop.
//! let config = StudyConfig::builder().subjects(8).seed(7).build();
//! let dataset = Dataset::generate(&config);
//! let matcher = PairTableMatcher::default();
//!
//! let same = dataset.genuine_score(&matcher, SubjectId(0), DeviceId(0), DeviceId(0));
//! let cross = dataset.genuine_score(&matcher, SubjectId(0), DeviceId(0), DeviceId(4));
//! assert!(same.value() >= 0.0 && cross.value() >= 0.0);
//! ```

pub use fp_core;
pub use fp_image;
pub use fp_index;
pub use fp_match;
pub use fp_quality;
pub use fp_sensor;
pub use fp_stats;
pub use fp_study;
pub use fp_synth;
pub use fp_telemetry;

/// Convenience re-exports of the types used by nearly every application.
pub mod prelude {
    pub use fp_core::geometry::{Direction, Orientation, Point, Rect, RigidMotion, Vector};
    pub use fp_core::ids::{DeviceId, Digit, Finger, Hand, SessionId, SubjectId};
    pub use fp_core::minutia::{Minutia, MinutiaKind};
    pub use fp_core::template::Template;
    pub use fp_core::{MatchScore, Matcher};
    pub use fp_index::{CandidateIndex, IndexConfig};
    pub use fp_match::{HoughMatcher, PairTableMatcher};
    pub use fp_quality::{NfiqLevel, QualityAssessor};
    pub use fp_sensor::{Acquisition, Device, Impression};
    pub use fp_stats::roc::ScoreSet;
    pub use fp_study::config::StudyConfig;
    pub use fp_study::dataset::Dataset;
    pub use fp_telemetry::Telemetry;
}
