//! **Extension: concurrent-serving load harness** — sustained multiplexed
//! 1:N identification traffic through a real coordinator + `serve-shard`
//! topology, proven byte-identical to a sequential in-process baseline.
//!
//! The scaling experiment (`ext_scaling`) asks how far one search
//! stretches; this one asks what happens when many searches share the
//! wire. It spawns `serve-shard` child processes over loopback, enrolls a
//! synthetic gallery, and then:
//!
//! 1. **Correctness under concurrency** — N client threads drive the one
//!    coordinator at once; every candidate list must be byte-identical
//!    (ids AND score bits) to an unsharded in-process index searching the
//!    same probes sequentially, and the coordinator's RUNFP chain must
//!    equal the baseline's. One flipped bit anywhere fails the run.
//! 2. **Pipeline-depth proof** — a raw [`MuxConn`] to shard 0 puts eight
//!    stage-1 requests on the wire before awaiting any; the connection's
//!    `peak_in_flight` must observably reach eight and every pipelined
//!    response must equal the sequential reply to the same request. This
//!    is deterministic, not a race the scheduler has to win.
//! 3. **Latency ladder** — 1/2/4/8 client threads replay the probe set,
//!    each search timed into a histogram; every rung reports throughput
//!    and p50/p95/p99/p999, which is where overload and head-of-line
//!    blocking actually show up.
//! 4. **Admission ledger** — the shards' `serve.offered` /
//!    `serve.accepted` / `serve.overloaded` counters are scraped over the
//!    wire; offered must equal accepted + overloaded exactly. A request
//!    the server dropped without a typed answer breaks the ledger (and
//!    would already have hung or failed its caller).
//!
//! `study check-load` gates the emitted JSON on all four.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fp_core::rng::SeedTree;
use fp_core::template::Template;
use fp_index::{CandidateIndex, IndexConfig, SearchResult};
use fp_match::PairTableMatcher;
use fp_serve::proc::spawn_shard;
use fp_serve::wire::Frame;
use fp_serve::{Coordinator, MuxConn, RetryPolicy, SlowLog};
use fp_telemetry::{Level, Telemetry};
use serde_json::json;

use crate::config::StudyConfig;
use crate::experiments::ext_scaling::{recapture, synthetic_template, CROSS_DEVICE, SAME_DEVICE};
use crate::report::Report;

/// Probes per pass (capped so the whole harness stays seconds-scale).
const MAX_PROBES: usize = 48;

/// Client threads for the concurrent-correctness pass.
const PARITY_THREADS: usize = 4;

/// Requests put on the wire before any is awaited in the pipeline probe.
const PIPELINE_DEPTH: usize = 8;

/// Client-thread counts of the latency ladder.
const LADDER: [usize; 4] = [1, 2, 4, 8];

/// One rung of the latency ladder.
struct LoadRung {
    clients: usize,
    searches: usize,
    answered: usize,
    wall_seconds: f64,
    throughput_per_s: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

/// Everything the load rungs measured; serialized into the report values.
struct LoadData {
    gallery: usize,
    probes: usize,
    shards: usize,
    parity_checked: usize,
    parity_agreed: usize,
    runfp_remote: String,
    runfp_baseline: String,
    pipeline_peak: usize,
    pipeline_parity: bool,
    coordinator_peak: usize,
    offered: u64,
    accepted: u64,
    overloaded: u64,
    rungs: Vec<LoadRung>,
}

/// Runs the experiment (inert telemetry).
pub fn run(config: &StudyConfig) -> Report {
    run_with(config, &Telemetry::disabled())
}

/// [`run`] with telemetry. Parity counts, fingerprints and the admission
/// ledger are pure functions of the seed; latency and throughput vary with
/// the machine.
pub fn run_with(config: &StudyConfig, telemetry: &Telemetry) -> Report {
    run_with_slowlog(config, telemetry, None)
}

/// [`run_with`] plus an optional tail-latency exemplar log: every search
/// of the harness (concurrent pass and ladder rungs alike) is offered to
/// `slowlog`, and the caller reads the retained exemplars afterwards
/// (`study load --slowlog PATH` writes them as JSONL).
pub fn run_with_slowlog(
    config: &StudyConfig,
    telemetry: &Telemetry,
    slowlog: Option<Arc<SlowLog>>,
) -> Report {
    let (data, error) = match load_rung(config, telemetry, slowlog) {
        Ok(data) => (Some(data), None),
        Err(e) => {
            telemetry.event_with(Level::Error, "load rung failed", &[("error", e.clone())]);
            (None, Some(e))
        }
    };

    let mut body = String::new();
    if let Some(d) = &data {
        body.push_str(&format!(
            "serving load harness: {} subjects over {} serve-shard process(es), \
             {} probes per pass\n\n\
             concurrent pass ({PARITY_THREADS} client threads) vs sequential \
             in-process baseline:\n  \
             candidate-list parity {}/{} probes, RUNFP {} {} baseline {}\n\
             pipeline probe: {} requests in flight on one connection \
             (target {PIPELINE_DEPTH}), responses {} sequential replies\n\
             coordinator peak interleaving: {} concurrent requests on one \
             shard connection\n\
             admission ledger: offered {} = accepted {} + overloaded {}\n\n\
             {:<9}{:>10}{:>12}{:>11}{:>11}{:>11}{:>11}\n",
            d.gallery,
            d.shards,
            d.probes,
            d.parity_agreed,
            d.parity_checked,
            d.runfp_remote,
            if d.runfp_remote == d.runfp_baseline {
                "=="
            } else {
                "!="
            },
            d.runfp_baseline,
            d.pipeline_peak,
            if d.pipeline_parity {
                "equal"
            } else {
                "DIFFER from"
            },
            d.coordinator_peak,
            d.offered,
            d.accepted,
            d.overloaded,
            "clients",
            "answered",
            "search/s",
            "p50 us",
            "p95 us",
            "p99 us",
            "p999 us",
        ));
        for r in &d.rungs {
            body.push_str(&format!(
                "{:<9}{:>7}/{:<3}{:>11.1}{:>11.1}{:>11.1}{:>11.1}{:>11.1}\n",
                r.clients,
                r.answered,
                r.searches,
                r.throughput_per_s,
                r.p50_ns as f64 / 1e3,
                r.p95_ns as f64 / 1e3,
                r.p99_ns as f64 / 1e3,
                r.p999_ns as f64 / 1e3,
            ));
        }
        let knee = d
            .rungs
            .iter()
            .max_by(|a, b| a.throughput_per_s.total_cmp(&b.throughput_per_s))
            .map(|r| r.clients)
            .unwrap_or(1);
        body.push_str(&format!(
            "\nthroughput knee at {knee} client thread(s); latency numbers vary \
             with the machine, parity and the ledger do not\n"
        ));
    }
    if let Some(e) = &error {
        body.push_str(&format!("load rung FAILED: {e}\n"));
    }

    let values = match &data {
        Some(d) => {
            let knee = d
                .rungs
                .iter()
                .max_by(|a, b| a.throughput_per_s.total_cmp(&b.throughput_per_s))
                .map(|r| r.clients)
                .unwrap_or(1);
            json!({
                "subjects": d.gallery,
                "probes": d.probes,
                "shards": d.shards,
                "seed": config.seed,
                "error": error,
                "parity_checked": d.parity_checked,
                "parity_agreed": d.parity_agreed,
                "runfp_remote": d.runfp_remote,
                "runfp_baseline": d.runfp_baseline,
                "pipeline": {
                    "target": PIPELINE_DEPTH,
                    "peak_in_flight": d.pipeline_peak,
                    "responses_match": d.pipeline_parity,
                    "coordinator_peak": d.coordinator_peak,
                },
                "admission": {
                    "offered": d.offered,
                    "accepted": d.accepted,
                    "overloaded": d.overloaded,
                },
                "knee_clients": knee,
                "rungs": d.rungs.iter().map(|r| json!({
                    "clients": r.clients,
                    "searches": r.searches,
                    "answered": r.answered,
                    "wall_seconds": r.wall_seconds,
                    "throughput_per_s": r.throughput_per_s,
                    "p50_ns": r.p50_ns,
                    "p95_ns": r.p95_ns,
                    "p99_ns": r.p99_ns,
                    "p999_ns": r.p999_ns,
                })).collect::<Vec<_>>(),
            })
        }
        None => json!({
            "subjects": config.subjects,
            "seed": config.seed,
            "error": error,
            "rungs": [],
        }),
    };

    Report::new(
        "ext-load",
        "multiplexed serving under concurrent load",
        body,
        values,
    )
}

/// Spawns the topology, runs all four load phases, tears everything down.
fn load_rung(
    config: &StudyConfig,
    telemetry: &Telemetry,
    slowlog: Option<Arc<SlowLog>>,
) -> Result<LoadData, String> {
    let seeds = SeedTree::new(config.seed).child(&[0xEA]);
    let gallery = config.subjects;
    let shards = if config.remote_shards >= 1 {
        config.remote_shards
    } else {
        2
    };
    let _span = telemetry.span_with(
        "load.harness",
        &[
            ("gallery", gallery.to_string()),
            ("shards", shards.to_string()),
        ],
    );

    let pool: Vec<Template> = (0..gallery)
        .map(|i| synthetic_template(&seeds, i as u64, 22 + i % 14))
        .collect();
    let probes: Vec<Template> = (0..gallery.min(MAX_PROBES))
        .map(|p| {
            let subject = p * (gallery / gallery.min(MAX_PROBES));
            let profile = if p.is_multiple_of(2) {
                SAME_DEVICE
            } else {
                CROSS_DEVICE
            };
            recapture(&pool[subject], &seeds, (gallery + subject) as u64, profile)
        })
        .collect();
    let n = probes.len();

    // Sequential in-process baseline: the byte-level ground truth every
    // concurrent result — and the coordinator's RUNFP chain — must equal.
    let mut baseline_index =
        CandidateIndex::with_config(PairTableMatcher::default(), IndexConfig::scaled(gallery))
            .with_run_seed(config.seed);
    baseline_index.enroll_all(&pool);
    let baseline: Vec<SearchResult> = probes.iter().map(|p| baseline_index.search(p)).collect();
    let runfp_baseline = baseline_index.run_fingerprint().hex();

    // The loopback topology: serve-shard children of this very binary
    // (FP_SERVE_SHARD_EXE overrides, e.g. for tests driving a test build).
    let exe = match std::env::var_os("FP_SERVE_SHARD_EXE") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
    };
    let mut children = Vec::with_capacity(shards);
    for _ in 0..shards {
        children.push(
            spawn_shard(&exe, &["serve-shard"])
                .map_err(|e| format!("spawn {exe:?} serve-shard: {e}"))?,
        );
    }
    let addrs: Vec<std::net::SocketAddr> = children.iter().map(|c| c.addr).collect();
    let deadline = Duration::from_secs(60);
    let mut remote = Coordinator::connect(
        &addrs,
        IndexConfig::scaled(gallery),
        deadline,
        RetryPolicy::default(),
    )
    .map_err(|e| e.to_string())?
    .with_telemetry(telemetry)
    .with_run_seed(config.seed);
    if let Some(slowlog) = slowlog {
        remote = remote.with_slowlog(slowlog);
    }
    remote.enroll_all(&pool).map_err(|e| e.to_string())?;
    telemetry.event_with(
        Level::Info,
        "load topology up",
        &[
            ("gallery", gallery.to_string()),
            ("shards", shards.to_string()),
            ("probes", n.to_string()),
        ],
    );

    // Phase 1: concurrent correctness. PARITY_THREADS threads share the
    // one coordinator; probe i goes to thread i % PARITY_THREADS. Results
    // come back tagged with their probe index, so parity is per-probe.
    let results = Mutex::new(vec![None::<SearchResult>; n]);
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = (0..PARITY_THREADS)
            .map(|t| {
                let remote = &remote;
                let probes = &probes;
                let results = &results;
                scope.spawn(move || -> Result<(), String> {
                    for i in (t..probes.len()).step_by(PARITY_THREADS) {
                        let result = remote.search(&probes[i]).map_err(|e| e.to_string())?;
                        results.lock().expect("results lock")[i] = Some(result);
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread panicked")?;
        }
        Ok(())
    })?;
    let results = results.into_inner().expect("results lock");
    let mut parity_agreed = 0usize;
    for (got, want) in results.iter().zip(&baseline) {
        let got = got.as_ref().expect("every probe searched");
        // Byte-level parity: same ids in the same order with the very same
        // score bits (`Candidate: PartialEq` compares the f64 exactly).
        if got.candidates() == want.candidates() && got.gallery_len() == want.gallery_len() {
            parity_agreed += 1;
        }
    }
    // The chain covers exactly the concurrent pass; snapshot before the
    // ladder replays the probes, then check shard chains for drift.
    let runfp_remote = remote.run_fingerprint().hex();
    remote
        .verify_fingerprints()
        .map_err(|e| format!("fingerprint verification after concurrent pass: {e}"))?;
    telemetry.event_with(
        if parity_agreed == n {
            Level::Info
        } else {
            Level::Error
        },
        "concurrent pass complete",
        &[
            ("parity_agreed", parity_agreed.to_string()),
            ("parity_checked", n.to_string()),
            ("runfp", runfp_remote.clone()),
        ],
    );

    // Phase 2: deterministic pipeline-depth proof on a raw connection to
    // shard 0. Eight requests go on the wire before any response is
    // awaited — peak_in_flight reaching eight is guaranteed by
    // construction, not by scheduler luck — and each pipelined response
    // must equal the sequential reply to the same request.
    let conn = MuxConn::new(addrs[0], deadline);
    let request = Frame::StageOne {
        probe: probes[0].clone(),
        trace: None,
    };
    let tickets: Vec<_> = (0..PIPELINE_DEPTH)
        .map(|_| conn.begin(&request).map(|(t, _)| t))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("pipeline begin: {e}"))?;
    let pipeline_peak = conn.peak_in_flight();
    let mut pipelined = Vec::with_capacity(PIPELINE_DEPTH);
    for ticket in tickets {
        pipelined.push(
            conn.finish(ticket)
                .map_err(|e| format!("pipeline finish: {e}"))?
                .0,
        );
    }
    let (reference, _, _) = conn
        .call(&request)
        .map_err(|e| format!("pipeline sequential reference: {e}"))?;
    let pipeline_parity = pipelined.iter().all(|f| *f == reference);
    drop(conn);
    telemetry.event_with(
        if pipeline_parity {
            Level::Info
        } else {
            Level::Error
        },
        "pipeline probe complete",
        &[
            ("peak_in_flight", pipeline_peak.to_string()),
            ("target", PIPELINE_DEPTH.to_string()),
        ],
    );

    // Phase 3: the latency ladder. Each rung replays every probe across
    // `clients` threads; per-search wall time lands in a histogram whose
    // snapshot provides the percentiles. Correctness was already pinned in
    // phase 1 — here only the distribution changes with concurrency.
    let hist_registry = Telemetry::enabled();
    let mut rungs = Vec::with_capacity(LADDER.len());
    for clients in LADDER {
        let _rung_span = telemetry.span_with("load.rung", &[("clients", clients.to_string())]);
        let hist = hist_registry.value(&format!("load.search_ns.c{clients}"));
        let mirror = telemetry.value(&format!("load.search_ns.c{clients}"));
        let answered = std::sync::atomic::AtomicUsize::new(0);
        let wall = Instant::now();
        std::thread::scope(|scope| -> Result<(), String> {
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    let remote = &remote;
                    let probes = &probes;
                    let hist = &hist;
                    let mirror = &mirror;
                    let answered = &answered;
                    scope.spawn(move || -> Result<(), String> {
                        for i in (t..probes.len()).step_by(clients) {
                            let start = Instant::now();
                            remote.search(&probes[i]).map_err(|e| e.to_string())?;
                            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            hist.record(ns);
                            mirror.record(ns);
                            answered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(())
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("client thread panicked")?;
            }
            Ok(())
        })
        .map_err(|e| format!("ladder rung ({clients} clients): {e}"))?;
        let wall_seconds = wall.elapsed().as_secs_f64();
        let snap = hist.snapshot();
        telemetry.event_with(
            Level::Info,
            "ladder rung complete",
            &[
                ("clients", clients.to_string()),
                ("p50_ns", snap.p50.to_string()),
                ("p99_ns", snap.p99.to_string()),
            ],
        );
        rungs.push(LoadRung {
            clients,
            searches: n,
            answered: answered.into_inner(),
            wall_seconds,
            throughput_per_s: n as f64 / wall_seconds.max(1e-9),
            p50_ns: snap.p50,
            p95_ns: snap.p95,
            p99_ns: snap.p99,
            p999_ns: snap.p999,
        });
    }
    let coordinator_peak = remote.peak_in_flight();
    remote
        .verify_fingerprints()
        .map_err(|e| format!("fingerprint verification after ladder: {e}"))?;

    // Phase 4: scrape the admission ledger straight off each shard over
    // the wire. Every shard must satisfy offered == accepted + overloaded
    // on its own; the report sums them.
    let (mut offered, mut accepted, mut overloaded) = (0u64, 0u64, 0u64);
    for (k, &addr) in addrs.iter().enumerate() {
        let stats_conn = MuxConn::new(addr, deadline);
        let (response, _, _) = stats_conn
            .call(&Frame::Stats)
            .map_err(|e| format!("stats scrape shard {k}: {e}"))?;
        let Frame::StatsOk { counters, .. } = response else {
            return Err(format!(
                "stats scrape shard {k}: expected stats_ok, got '{}'",
                response.kind()
            ));
        };
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let (o, a, v) = (
            get("serve.offered"),
            get("serve.accepted"),
            get("serve.overloaded"),
        );
        if o != a + v {
            return Err(format!(
                "shard {k} admission ledger broken: offered {o} != accepted {a} + overloaded {v}"
            ));
        }
        offered += o;
        accepted += a;
        overloaded += v;
    }
    telemetry.event_with(
        Level::Info,
        "admission ledger scraped",
        &[
            ("offered", offered.to_string()),
            ("accepted", accepted.to_string()),
            ("overloaded", overloaded.to_string()),
        ],
    );

    // Clean wire-level shutdown, then reap; ShardChild kills stragglers.
    let _ = remote.shutdown_all();
    for child in &mut children {
        child.wait_exit(Duration::from_secs(5));
    }

    Ok(LoadData {
        gallery,
        probes: n,
        shards,
        parity_checked: n,
        parity_agreed,
        runfp_remote,
        runfp_baseline,
        pipeline_peak,
        pipeline_parity,
        coordinator_peak,
        offered,
        accepted,
        overloaded,
        rungs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole harness end to end at a tiny scale, driving real
    /// serve-shard children (the test binary is not the study binary, so
    /// point FP_SERVE_SHARD_EXE at the study executable when set by CI;
    /// without it the spawn fails and the report carries the error — the
    /// run itself must not panic).
    #[test]
    fn tiny_run_reports_error_or_full_parity() {
        let config = StudyConfig::builder().subjects(16).seed(11).build();
        let report = run(&config);
        assert_eq!(report.id, "ext-load");
        let values = &report.values;
        if values["error"].is_null() {
            assert_eq!(values["parity_agreed"], values["parity_checked"]);
            assert_eq!(values["runfp_remote"], values["runfp_baseline"]);
            assert!(values["pipeline"]["peak_in_flight"].as_u64().unwrap() >= 4);
        } else {
            // Spawn failed (no serve-shard binary): rungs must be absent,
            // not half-filled.
            assert!(values["rungs"].as_array().unwrap().is_empty());
        }
    }
}
