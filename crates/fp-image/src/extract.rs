//! Crossing-number minutiae extraction from ridge skeletons.
//!
//! On a one-pixel skeleton the crossing number
//! `CN = 1/2 Σ |P_i - P_{i+1}|` classifies each ridge pixel: CN = 1 is a
//! ridge ending, CN = 3 a bifurcation. Directions come from walking the
//! skeleton away from the minutia; spurious detections (border artifacts,
//! short spurs, minutiae pairs bridged by noise) are filtered before
//! building the output [`Template`].

use fp_core::geometry::{Direction, Point, Rect};
use fp_core::minutia::{Minutia, MinutiaKind};
use fp_core::template::{Template, MAX_MINUTIAE};

use crate::binarize::BinaryImage;
use crate::segment::Mask;

/// Parameters of the extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractConfig {
    /// Image resolution (dots per inch) for pixel→mm conversion.
    pub dpi: f64,
    /// Length (pixels) of the skeleton walk used to estimate direction.
    pub walk_length: usize,
    /// Minutiae pairs closer than this (pixels) are considered artifacts
    /// and removed.
    pub min_separation_px: f64,
    /// Minutiae within this many pixels of a background block are dropped
    /// (ridge ends at the print border are not real endings).
    pub border_margin_px: usize,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            dpi: 500.0,
            walk_length: 6,
            min_separation_px: 6.0,
            border_margin_px: 8,
        }
    }
}

/// Crossing number of skeleton pixel `(x, y)`.
fn crossing_number(skel: &BinaryImage, x: isize, y: isize) -> usize {
    let ring = [
        skel.at(x, y - 1),
        skel.at(x + 1, y - 1),
        skel.at(x + 1, y),
        skel.at(x + 1, y + 1),
        skel.at(x, y + 1),
        skel.at(x - 1, y + 1),
        skel.at(x - 1, y),
        skel.at(x - 1, y - 1),
    ];
    let mut transitions = 0;
    for i in 0..8 {
        if ring[i] != ring[(i + 1) % 8] {
            transitions += 1;
        }
    }
    transitions / 2
}

/// Walks the skeleton from `(x, y)` along one branch, returning the
/// direction from the minutia to the walk end (the ridge direction for an
/// ending).
fn walk_direction(skel: &BinaryImage, x: usize, y: usize, steps: usize) -> Option<Direction> {
    let mut prev = (x as isize, y as isize);
    let mut cur = prev;
    // First step: any skeleton neighbour.
    let mut next = None;
    for (dx, dy) in NEIGHBOUR_OFFSETS {
        if skel.at(cur.0 + dx, cur.1 + dy) {
            next = Some((cur.0 + dx, cur.1 + dy));
            break;
        }
    }
    let mut cur_next = next?;
    for _ in 0..steps {
        let candidate = NEIGHBOUR_OFFSETS
            .iter()
            .map(|&(dx, dy)| (cur_next.0 + dx, cur_next.1 + dy))
            .find(|&(nx, ny)| skel.at(nx, ny) && (nx, ny) != cur && (nx, ny) != prev);
        match candidate {
            Some(c) => {
                prev = cur;
                cur = cur_next;
                cur_next = c;
            }
            None => break,
        }
    }
    let dx = (cur_next.0 - x as isize) as f64;
    let dy = (cur_next.1 - y as isize) as f64;
    if dx == 0.0 && dy == 0.0 {
        None
    } else {
        Some(Direction::from_radians(dy.atan2(dx)))
    }
}

const NEIGHBOUR_OFFSETS: [(isize, isize); 8] = [
    (0, -1),
    (1, -1),
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (-1, -1),
];

/// Extracts minutiae from a ridge skeleton.
///
/// `window` is the physical extent (mm) the image covers; pixel positions
/// are mapped into it so the output template lives in the same coordinate
/// system as templates from the acquisition fast path.
///
/// # Errors
///
/// Returns an error when the resulting template violates `fp_core` template
/// invariants (e.g. more than [`MAX_MINUTIAE`] survive filtering, which
/// indicates a degenerate skeleton).
pub fn extract_minutiae(
    skel: &BinaryImage,
    mask: &Mask,
    window: Rect,
    config: &ExtractConfig,
) -> fp_core::Result<Template> {
    let (w, h) = (skel.width(), skel.height());
    let pitch_x = window.width() / w as f64;
    let pitch_y = window.height() / h as f64;
    let margin = config.border_margin_px as isize;

    let mut found: Vec<(usize, usize, MinutiaKind, Direction)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if !skel.at(x as isize, y as isize) {
                continue;
            }
            let cn = crossing_number(skel, x as isize, y as isize);
            let kind = match cn {
                1 => MinutiaKind::RidgeEnding,
                3 => MinutiaKind::Bifurcation,
                _ => continue,
            };
            // Border suppression: the minutia and its margin neighbourhood
            // must be foreground.
            let near_border = [(margin, 0), (-margin, 0), (0, margin), (0, -margin)]
                .iter()
                .any(|&(dx, dy)| {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    nx < 0
                        || ny < 0
                        || nx >= w as isize
                        || ny >= h as isize
                        || !mask.is_foreground(nx as usize, ny as usize)
                });
            if near_border {
                continue;
            }
            let Some(direction) = walk_direction(skel, x, y, config.walk_length) else {
                continue;
            };
            // Endings point back along the ridge; bifurcations along the
            // dominant branch. The walk gives ridge-consistent directions
            // either way.
            found.push((x, y, kind, direction));
        }
    }

    // Artifact filtering: remove mutually-close pairs (bridges, spurs).
    let min_sep2 = config.min_separation_px * config.min_separation_px;
    let mut keep = vec![true; found.len()];
    for i in 0..found.len() {
        for j in (i + 1)..found.len() {
            let dx = found[i].0 as f64 - found[j].0 as f64;
            let dy = found[i].1 as f64 - found[j].1 as f64;
            if dx * dx + dy * dy < min_sep2 {
                keep[i] = false;
                keep[j] = false;
            }
        }
    }

    let mut minutiae: Vec<Minutia> = found
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|((x, y, kind, direction), _)| {
            let pos = Point::new(
                window.min().x + (x as f64 + 0.5) * pitch_x,
                window.min().y + (y as f64 + 0.5) * pitch_y,
            );
            Minutia::new(pos, direction, kind, 0.8)
        })
        .collect();
    if minutiae.len() > MAX_MINUTIAE {
        // Keep the most central minutiae; an overfull result means the
        // skeleton is noisy and peripheral detections are the least
        // trustworthy.
        let centre = window.centre();
        minutiae.sort_by(|a, b| {
            a.pos
                .distance_sq(&centre)
                .partial_cmp(&b.pos.distance_sq(&centre))
                .expect("finite distances")
        });
        minutiae.truncate(MAX_MINUTIAE);
    }
    Template::from_minutiae(minutiae, config.dpi, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::GrayImage;
    use crate::segment::segment;

    fn from_rows(rows: &[&str]) -> BinaryImage {
        let h = rows.len();
        let w = rows[0].len();
        let mut data = Vec::with_capacity(w * h);
        for r in rows {
            for c in r.chars() {
                data.push(c == '#');
            }
        }
        BinaryImage::from_data(w, h, data)
    }

    /// An all-foreground mask for unit tests.
    fn full_mask(w: usize, h: usize) -> Mask {
        let mut img = GrayImage::filled(w, h, 0.0).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, ((x + y) % 2) as f32);
            }
        }
        segment(&img, 4, 0.1)
    }

    #[test]
    fn detects_a_ridge_ending() {
        // A line ending in the middle of the image.
        let rows = [
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "#########...........",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
        ];
        let skel = from_rows(&rows);
        let mask = full_mask(20, 20);
        let window = Rect::centred(Point::ORIGIN, 2.0, 2.0).unwrap();
        let config = ExtractConfig {
            border_margin_px: 2,
            min_separation_px: 3.0,
            ..ExtractConfig::default()
        };
        let t = extract_minutiae(&skel, &mask, window, &config).unwrap();
        assert_eq!(t.len(), 1, "minutiae: {:?}", t.minutiae());
        assert_eq!(t.minutiae()[0].kind, MinutiaKind::RidgeEnding);
        // Direction points back along the ridge (-x).
        let d = t.minutiae()[0].direction;
        assert!(d.separation(Direction::from_radians(std::f64::consts::PI)) < 0.4);
    }

    #[test]
    fn detects_a_bifurcation() {
        let rows = [
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            ".........#..........",
            ".........#..........",
            ".........#..........",
            "........#.#.........",
            ".......#...#........",
            "......#.....#.......",
            ".....#.......#......",
            "....#.........#.....",
            "...#...........#....",
            "..#.............#...",
            ".#...............#..",
            "#.................#.",
            "....................",
            "....................",
        ];
        let skel = from_rows(&rows);
        let mask = full_mask(20, 20);
        let window = Rect::centred(Point::ORIGIN, 2.0, 2.0).unwrap();
        let config = ExtractConfig {
            border_margin_px: 1,
            min_separation_px: 2.0,
            ..ExtractConfig::default()
        };
        let t = extract_minutiae(&skel, &mask, window, &config).unwrap();
        assert!(
            t.minutiae()
                .iter()
                .any(|m| m.kind == MinutiaKind::Bifurcation),
            "no bifurcation found: {:?}",
            t.minutiae()
        );
    }

    #[test]
    fn close_pairs_are_filtered() {
        // Two endings two pixels apart (a broken-ridge artifact).
        let rows = [
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "#######..###########",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
        ];
        let skel = from_rows(&rows);
        let mask = full_mask(20, 20);
        let window = Rect::centred(Point::ORIGIN, 2.0, 2.0).unwrap();
        let config = ExtractConfig {
            border_margin_px: 2,
            min_separation_px: 5.0,
            ..ExtractConfig::default()
        };
        let t = extract_minutiae(&skel, &mask, window, &config).unwrap();
        assert_eq!(t.len(), 0, "artifact pair not filtered: {:?}", t.minutiae());
    }

    #[test]
    fn straight_line_interior_has_no_minutiae() {
        let mut rows = vec!["....................".to_string(); 20];
        rows[10] = "####################".to_string();
        let refs: Vec<&str> = rows.iter().map(|s| s.as_str()).collect();
        let skel = from_rows(&refs);
        let mask = full_mask(20, 20);
        let window = Rect::centred(Point::ORIGIN, 2.0, 2.0).unwrap();
        let config = ExtractConfig {
            border_margin_px: 3,
            ..ExtractConfig::default()
        };
        // The line's two endpoints are at the border (suppressed); interior
        // pixels have CN = 2 (no minutiae).
        let t = extract_minutiae(&skel, &mask, window, &config).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn pixel_positions_map_to_window_mm() {
        let rows = [
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "#########...........",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
            "....................",
        ];
        let skel = from_rows(&rows);
        let mask = full_mask(20, 20);
        let window = Rect::from_corners(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        let config = ExtractConfig {
            border_margin_px: 2,
            min_separation_px: 3.0,
            ..ExtractConfig::default()
        };
        let t = extract_minutiae(&skel, &mask, window, &config).unwrap();
        assert_eq!(t.len(), 1);
        let m = t.minutiae()[0];
        // Ending at pixel (8, 9) -> mm (8.5, 9.5) in a 20x20 window.
        assert!((m.pos.x - 8.5).abs() < 0.6, "x = {}", m.pos.x);
        assert!((m.pos.y - 9.5).abs() < 0.6, "y = {}", m.pos.y);
    }
}
