//! Snapshotting the registry and rendering the one-screen ASCII summary.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use serde::{Deserialize, Serialize};

use fp_stats::summary::Summary;

use crate::hist::HistogramSnapshot;
use crate::stage::StageStats;
use crate::Inner;

/// A consistent, serializable copy of every instrument.
///
/// `counters` and `values` are deterministic for a fixed seed (they measure
/// work); `durations`, `gauges` and `stages` measure time and vary run to
/// run. Keys are sorted (`BTreeMap`), so serialized output has a stable
/// field order.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Wall-time histograms (nanoseconds), by span path.
    pub durations: BTreeMap<String, HistogramSnapshot>,
    /// Work-size histograms, by name.
    pub values: BTreeMap<String, HistogramSnapshot>,
    /// Parallel-stage thread statistics, in completion order.
    pub stages: Vec<StageStats>,
    /// Flight-recorder health: how much of the trace was truncated.
    /// Defaults to zeros when parsing snapshots written before the field
    /// existed (see the hand-written `Deserialize` below — the vendored
    /// derive has no `#[serde(default)]`).
    pub trace: TraceHealth,
}

impl serde::Deserialize for MetricsSnapshot {
    fn from_content(content: &serde::Content) -> Result<MetricsSnapshot, serde::DeError> {
        Ok(MetricsSnapshot {
            counters: serde::Deserialize::from_content(content.field("counters")?)?,
            gauges: serde::Deserialize::from_content(content.field("gauges")?)?,
            durations: serde::Deserialize::from_content(content.field("durations")?)?,
            values: serde::Deserialize::from_content(content.field("values")?)?,
            stages: serde::Deserialize::from_content(content.field("stages")?)?,
            trace: match content.field("trace") {
                Ok(trace) => serde::Deserialize::from_content(trace)?,
                Err(_) => TraceHealth::default(),
            },
        })
    }
}

/// Flight-recorder truncation counters.
///
/// The span/event slot buffers are bounded and never block: overflow is
/// counted, not stored. Non-zero numbers here mean the trace export is
/// incomplete and span-derived figures undercount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceHealth {
    /// Spans discarded because the span buffer was full.
    pub dropped_spans: u64,
    /// Events discarded because the event buffer was full.
    pub dropped_events: u64,
}

pub(crate) fn take(inner: Option<&Inner>) -> MetricsSnapshot {
    let Some(inner) = inner else {
        return MetricsSnapshot::default();
    };
    MetricsSnapshot {
        counters: inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect(),
        gauges: inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect(),
        durations: inner
            .durations
            .lock()
            .expect("duration registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect(),
        values: inner
            .values
            .lock()
            .expect("value registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect(),
        stages: inner
            .stages
            .lock()
            .expect("stage registry poisoned")
            .clone(),
        trace: {
            let (dropped_spans, dropped_events) = inner.trace.dropped_counts();
            TraceHealth {
                dropped_spans,
                dropped_events,
            }
        },
    }
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders a one-screen summary: the five slowest spans by total time,
/// worker utilization per parallel stage, and the work counters.
pub fn render_summary(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("telemetry summary\n");

    // Top spans by total wall time.
    let mut spans: Vec<(&String, &HistogramSnapshot)> = snapshot.durations.iter().collect();
    spans.sort_by_key(|(_, h)| std::cmp::Reverse(h.sum));
    if !spans.is_empty() {
        out.push_str("  slowest spans (by total time):\n");
        for (name, h) in spans.iter().take(5) {
            out.push_str(&format!(
                "    {:<36} {:>9} total  {:>8} p50  {:>8} p95  x{}\n",
                name,
                format_ns(h.sum),
                format_ns(h.p50),
                format_ns(h.p95),
                h.count,
            ));
        }
    }

    // Thread utilization per parallel stage.
    if !snapshot.stages.is_empty() {
        out.push_str("  parallel stages:\n");
        for stage in &snapshot.stages {
            let utils: Vec<f64> = stage.threads.iter().map(|t| t.utilization).collect();
            let summary = Summary::of(&utils);
            let (mean, min) = summary.map(|s| (s.mean, s.min)).unwrap_or((0.0, 0.0));
            out.push_str(&format!(
                "    {:<36} {:>9} wall  {:>3} threads  util mean {:>4.0}% min {:>4.0}%  {} items\n",
                stage.stage,
                format_ns(stage.wall_ns),
                stage.threads.len(),
                mean * 100.0,
                min * 100.0,
                stage.items,
            ));
        }
    }

    // Trace truncation: only worth a line when something was lost.
    if snapshot.trace != TraceHealth::default() {
        out.push_str(&format!(
            "  trace truncated: {} spans dropped, {} events dropped\n",
            snapshot.trace.dropped_spans, snapshot.trace.dropped_events,
        ));
    }

    // Deterministic work counters.
    if !snapshot.counters.is_empty() {
        out.push_str("  counters:\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("    {name:<44} {value:>12}\n"));
        }
    }

    // Work-size distributions, largest mean first.
    if !snapshot.values.is_empty() {
        out.push_str("  work sizes:\n");
        let mut values: Vec<(&String, &HistogramSnapshot)> = snapshot.values.iter().collect();
        values.sort_by(|a, b| {
            b.1.mean()
                .partial_cmp(&a.1.mean())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (name, h) in values {
            out.push_str(&format!(
                "    {:<36} mean {:>10.1}  p50 {:>8}  p95 {:>8}  max {:>8}  x{}\n",
                name,
                h.mean(),
                h.p50,
                h.p95,
                h.max,
                h.count,
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn snapshot_serializes_to_json_with_sorted_sections() {
        let t = Telemetry::enabled();
        t.counter("b.count").add(2);
        t.counter("a.count").add(1);
        t.gauge("load").set(0.5);
        t.duration("stage")
            .record(std::time::Duration::from_micros(100));
        t.value("sizes").record(40);

        let json = serde_json::to_value(t.snapshot()).expect("serializes");
        assert_eq!(json["counters"]["a.count"], 1);
        assert_eq!(json["counters"]["b.count"], 2);
        assert_eq!(json["gauges"]["load"].as_f64(), Some(0.5));
        assert_eq!(json["durations"]["stage"]["count"], 1);
        assert_eq!(json["values"]["sizes"]["sum"], 40);
        // Sorted key order in the serialized map.
        let keys: Vec<&String> = json["counters"]
            .as_object()
            .expect("object")
            .keys()
            .collect();
        assert_eq!(keys, ["a.count", "b.count"]);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = Telemetry::enabled();
        t.counter("n").add(3);
        t.value("sizes").record(7);
        let snapshot = t.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn forced_drops_surface_in_snapshot_and_json() {
        let t = Telemetry::with_trace_capacity(2, 1);
        for i in 0..5 {
            let _span = t.trace_span("work", &[]);
            t.event(crate::Level::Info, &format!("e{i}"));
        }
        let snapshot = t.snapshot();
        assert_eq!(snapshot.trace.dropped_spans, 3);
        assert_eq!(snapshot.trace.dropped_events, 4);
        let json = serde_json::to_value(&snapshot).expect("serializes");
        assert_eq!(json["trace"]["dropped_spans"], 3);
        assert_eq!(json["trace"]["dropped_events"], 4);
        let text = render_summary(&snapshot);
        assert!(text.contains("3 spans dropped"), "{text}");
        // Old snapshots without the field still parse, as all-zeros.
        let legacy: MetricsSnapshot = serde_json::from_str(
            r#"{"counters":{},"gauges":{},"durations":{},"values":{},"stages":[]}"#,
        )
        .expect("legacy parses");
        assert_eq!(legacy.trace, TraceHealth::default());
    }

    #[test]
    fn summary_mentions_spans_stages_and_counters() {
        let t = Telemetry::enabled();
        t.counter("match.comparisons").add(100);
        t.duration("study.scores")
            .record(std::time::Duration::from_millis(2));
        {
            let recorder = crate::stage::StageRecorder::start(&t, "scores.genuine");
            let mut w = crate::stage::WorkerStats::default();
            w.record(std::time::Duration::from_micros(50));
            recorder.finish(vec![w]);
        }
        let text = render_summary(&t.snapshot());
        assert!(text.contains("study.scores"), "{text}");
        assert!(text.contains("scores.genuine"), "{text}");
        assert!(text.contains("match.comparisons"), "{text}");
        assert!(text.contains("util"), "{text}");
    }
}
