//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! miniature serde: instead of the visitor/`Serializer` machinery, values
//! serialize to (and deserialize from) a JSON-shaped [`Content`] tree. The
//! derive macros in the companion `serde_derive` crate and the `serde_json`
//! stand-in both speak this tree, which covers everything the workspace
//! needs (derived structs/enums, `json!`, pretty printing, `from_str`).
//!
//! Limitations versus real serde (all unused by this workspace): no
//! `#[serde(...)]` attributes, no generic types in derives, no zero-copy
//! deserialization, data formats other than JSON are not pluggable.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the wire format of this mini-serde.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps), so serialization output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negative values use [`Content::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object with insertion-ordered keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a field of a [`Content::Map`]; errors for missing fields or
    /// non-map content.
    pub fn field(&self, name: &str) -> Result<&Content, DeError> {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::custom(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The sequence elements; errors when not a [`Content::Seq`] of length `len`.
    pub fn tuple(&self, len: usize) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) if items.len() == len => Ok(items),
            Content::Seq(items) => Err(DeError::custom(format!(
                "expected tuple of length {len}, found length {}",
                items.len()
            ))),
            other => Err(DeError::custom(format!(
                "expected tuple of length {len}, found {}",
                other.kind()
            ))),
        }
    }

    /// The string content of a unit enum variant.
    pub fn variant(&self) -> Result<&str, DeError> {
        match self {
            Content::Str(s) => Ok(s),
            other => Err(DeError::custom(format!(
                "expected variant string, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name of the content's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can serialize itself to a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the content tree.
    fn to_content(&self) -> Content;
}

/// A value that can reconstruct itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses `content` into `Self`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Maps serialize with sorted keys so output is deterministic even for
/// hash maps (real serde_json leaves `HashMap` order unspecified).
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

fn integer(content: &Content) -> Result<i128, DeError> {
    match content {
        Content::U64(v) => Ok(*v as i128),
        Content::I64(v) => Ok(*v as i128),
        other => Err(DeError::custom(format!(
            "expected integer, found {}",
            other.kind()
        ))),
    }
}

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = integer(content)?;
                <$ty>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

/// Supports `&'static str` fields in derived structs by leaking the parsed
/// string; acceptable for the workspace's static device tables, which are
/// only ever deserialized in tests (if at all).
impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        String::from_content(content).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content.tuple(N)?;
        let parsed: Vec<T> = items
            .iter()
            .map(T::from_content)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = content.tuple($len)?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42u32.to_content(), Content::U64(42));
        assert_eq!((-3i32).to_content(), Content::I64(-3));
        assert_eq!(3i32.to_content(), Content::U64(3));
        assert_eq!(u32::from_content(&Content::U64(42)), Ok(42));
        assert_eq!(
            String::from_content(&Content::Str("hi".into())),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![1.0f64, 2.5];
        let c = v.to_content();
        assert_eq!(Vec::<f64>::from_content(&c), Ok(v));
        let t = (1u32, -2i64);
        assert_eq!(<(u32, i64)>::from_content(&t.to_content()), Ok(t));
    }

    #[test]
    fn field_lookup_reports_missing() {
        let c = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert!(c.field("a").is_ok());
        assert!(c
            .field("b")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        match m.to_content() {
            Content::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
