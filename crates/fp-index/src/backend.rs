//! The cross-process score seam: [`ShardBackend`].
//!
//! `ShardedIndex` proved (shard.rs module docs) that the one seam along
//! which a two-stage 1:N search can be split without changing a single
//! byte of the result is **per-entry stage-1 channel scores** plus
//! **per-entry exact stage-2 scores** — both pure functions of (probe,
//! entry), bit-identical whatever gallery the entry shares. This module
//! names that seam as a trait so the fusion/merge driver can be written
//! once and run over *any* shard transport:
//!
//! * [`CandidateIndex`] implements it directly — the in-process shard;
//! * `fp-serve`'s `RemoteShard` implements it over a length-prefixed
//!   binary wire protocol — the cross-process shard.
//!
//! Everything above the seam (stitching shard score arrays into global
//! ones, the single global best-rank fusion, dealing the selected ids back
//! to their owning shards, and the final total-order merge) lives in
//! [`crate::shard`] as pure functions shared by `ShardedIndex`, the
//! reference driver [`search_backends`], and the remote coordinator.
//!
//! In-process backends cannot fail, so their impl is infallible in
//! practice; remote backends surface [`ShardError`] — a search over a dead
//! shard must fail loudly, never silently return a truncated candidate
//! list (a truncated list would look like a clean miss and quietly shift
//! the study's rank-1/FNMR numbers).

use std::fmt;

use fp_core::template::Template;
use fp_match::PreparableMatcher;

use crate::index::{Candidate, CandidateIndex, StageOneScores};

/// Why a shard backend could not serve its part of a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard cannot be reached: dead process, refused or reset
    /// connection, or an exhausted retry budget. The whole search fails —
    /// results must never silently omit a shard's gallery slice.
    Unavailable {
        /// Index of the failing shard.
        shard: usize,
        /// Human-readable transport diagnostics (last error, attempts).
        detail: String,
    },
    /// The shard answered, but with something protocol-invalid: a frame of
    /// the wrong type, a score array of the wrong length, or a typed error
    /// frame. Retrying cannot help; the search fails immediately.
    Protocol {
        /// Index of the offending shard.
        shard: usize,
        /// What was wrong with the reply.
        detail: String,
    },
    /// The shard's scraped run-fingerprint chain disagrees with the
    /// coordinator's mirror of the responses it actually received: the
    /// shard computed (or recorded) something different from what it
    /// served. Behavioral drift — corrupted state, a version skew, a
    /// forged score — that a candidate-list diff could only catch by
    /// re-scoring the gallery.
    FingerprintDrift {
        /// Index of the drifting shard.
        shard: usize,
        /// The coordinator's mirror chain value.
        expected: u64,
        /// The value the shard reported.
        reported: u64,
    },
}

impl ShardError {
    /// The shard the error originated from.
    pub fn shard(&self) -> usize {
        match self {
            ShardError::Unavailable { shard, .. }
            | ShardError::Protocol { shard, .. }
            | ShardError::FingerprintDrift { shard, .. } => *shard,
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Unavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            ShardError::Protocol { shard, detail } => {
                write!(f, "shard {shard} protocol error: {detail}")
            }
            ShardError::FingerprintDrift {
                shard,
                expected,
                reported,
            } => {
                write!(
                    f,
                    "shard {shard} fingerprint drift: expected {expected:016x}, \
                     shard reported {reported:016x}"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// One shard of a sharded 1:N gallery, behind any transport.
///
/// Both methods take the raw probe [`Template`]: probe-side features are
/// pure functions of (probe, config), so a remote shard recomputing them
/// from the template sees bit-identical features to an in-process shard
/// handed a precomputed copy. Local ids are dense per shard; callers own
/// the `global = local * shards + shard` mapping.
pub trait ShardBackend {
    /// Number of templates enrolled on this shard.
    fn shard_len(&self) -> usize;

    /// Stage 1: per-entry channel scores of this shard's gallery against
    /// `probe` (shard-invariant — see the shard.rs module docs).
    fn stage_one(&self, probe: &Template) -> Result<StageOneScores, ShardError>;

    /// Stage 2: exact matcher scores for the selected **local** ids, in
    /// selection order (callers globalize the ids and sort).
    fn stage_two(
        &self,
        probe: &Template,
        selected_local: &[u32],
    ) -> Result<Vec<Candidate>, ShardError>;
}

impl<M: PreparableMatcher> ShardBackend for CandidateIndex<M> {
    fn shard_len(&self) -> usize {
        self.len()
    }

    fn stage_one(&self, probe: &Template) -> Result<StageOneScores, ShardError> {
        Ok(self.stage1(&self.probe_features(probe)))
    }

    fn stage_two(
        &self,
        probe: &Template,
        selected_local: &[u32],
    ) -> Result<Vec<Candidate>, ShardError> {
        let prepared = self.prepare_probe(probe);
        let part = self.rerank(selected_local, &prepared);
        // Fold the part exactly as served (local ids, selection order) so
        // a coordinator mirroring the response can verify the chain.
        self.fold_part(&part);
        Ok(part)
    }
}

/// The reference driver: a full two-stage search over any set of shard
/// backends, byte-identical to [`CandidateIndex::search_with_budget`] on
/// the round-robin-concatenated gallery.
///
/// This is the exact sequence `ShardedIndex` and the remote coordinator
/// run — stage 1 on every shard, one global fusion, per-shard exact
/// re-rank, total-order merge — without their telemetry and threading
/// machinery, so tests can pin transport-independent correctness and new
/// transports have a model to diff against. Shards are visited
/// sequentially; parallel fan-out is the callers' concern.
pub fn search_backends<B: ShardBackend>(
    backends: &[B],
    probe: &Template,
    shortlist: usize,
) -> Result<crate::SearchResult, ShardError> {
    use crate::shard::{
        globalize_and_sort, merge_sorted_parts, select_per_shard, stitch_stage_one,
    };

    let s = backends.len();
    assert!(s >= 1, "need at least one shard backend");
    let total: usize = backends.iter().map(|b| b.shard_len()).sum();

    let mut per_shard = Vec::with_capacity(s);
    for backend in backends {
        per_shard.push(backend.stage_one(probe)?);
    }
    let (vote_scores, cyl_scores) = stitch_stage_one(&per_shard, total);
    let selected_local = select_per_shard(&vote_scores, &cyl_scores, shortlist, s);

    let mut parts = Vec::with_capacity(s);
    for (k, backend) in backends.iter().enumerate() {
        let mut part = if selected_local[k].is_empty() {
            Vec::new()
        } else {
            backend.stage_two(probe, &selected_local[k])?
        };
        globalize_and_sort(&mut part, k, s);
        parts.push(part);
    }
    Ok(crate::SearchResult::from_parts(
        merge_sorted_parts(&parts),
        total,
    ))
}
