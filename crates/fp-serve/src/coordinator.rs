//! The coordinator: `ShardedIndex` semantics over TCP shards.
//!
//! [`Coordinator`] mirrors [`fp_index::ShardedIndex`] exactly — round-robin
//! enrollment, pipelined stage-1 across shards, **one** global best-rank
//! fusion, pipelined per-shard exact re-rank, total-order merge — but each
//! shard is a [`RemoteShard`] connection instead of an in-process
//! [`fp_index::CandidateIndex`]. The fusion and merge steps call the very
//! same pure helpers in `fp_index::shard`, so a remote search is
//! byte-identical to the in-process sharded search, which is itself
//! byte-identical to the unsharded index (`study check-serve` audits the
//! whole chain).
//!
//! # Pipelining, not fan-out/join
//!
//! Each shard connection is a [`MuxConn`]: requests carry wire-v3 ids, so
//! the coordinator writes stage-1 requests to **every** shard before
//! awaiting the first response — the shards compute concurrently without
//! the coordinator spawning a thread per shard per search. Because the
//! connections multiplex, `search` takes `&self` and is thread-safe: N
//! client threads can drive one coordinator at once, their requests
//! interleaving on the same shard connections (`MuxConn::peak_in_flight`
//! counts how deep that interleaving actually got).
//!
//! # Failure semantics
//!
//! Every RPC runs under a per-request deadline and a bounded retry budget
//! with deterministic exponential backoff (jitter comes from a seeded
//! splitmix64, so reruns behave identically). A typed `OVERLOADED` frame —
//! the server shedding at its admission watermark — is retryable like a
//! transport error (backoff gives the queue room to drain); a shard that
//! stays dead or saturated after the budget surfaces as
//! [`ShardError::Unavailable`] and fails the whole search: a truncated
//! candidate list would silently shift rank-1 / FNIR numbers, which is
//! strictly worse than a loud error.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fp_core::template::Template;
use fp_index::shard::{globalize_and_sort, merge_sorted_parts, select_per_shard, stitch_stage_one};
use fp_index::{IndexConfig, SearchResult, ShardBackend, ShardError, StageOneScores};
use fp_telemetry::{
    DetachedSpan, FingerprintChain, FingerprintSnapshot, HistogramSnapshot, RunFingerprint,
    SpanRecord, Telemetry, TraceSnapshot,
};

use crate::metrics::ServeMetrics;
use crate::mux::{MuxConn, MuxError, Ticket};
use crate::slowlog::{ShardBreakdown, SlowLog};
use crate::wire::{code, Frame, ServerTiming, TraceContext};

/// Templates per [`Frame::EnrollBatch`]: keeps every frame far below
/// [`crate::wire::MAX_PAYLOAD`] while amortizing round trips.
const ENROLL_CHUNK: usize = 2048;

/// Bounded retry with deterministic exponential backoff.
///
/// Sleep before attempt `a` (1-based, attempt 0 never sleeps) is
/// `min(base * 2^(a-1), cap)` plus up to 25% seeded jitter. Determinism
/// matters here the way it does everywhere else in the study: a rerun of a
/// flaky experiment must behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per RPC (first try included). 1 disables retries.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed; mixed with (shard, attempt) via splitmix64.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
            seed: 0x5eed_f00d,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry attempt `attempt` (1-based) on
    /// shard `shard`. Pure function of (policy, shard, attempt).
    pub fn backoff(&self, shard: usize, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cap);
        let jitter_frac =
            (splitmix64(self.seed ^ (shard as u64) << 32 ^ attempt as u64) % 1000) as f64 / 1000.0;
        exp + exp.mul_f64(0.25 * jitter_frac)
    }
}

/// SplitMix64 — tiny, seedable, std-only; only used to decorrelate backoff
/// across shards, never for statistics.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One multiplexed TCP connection to a shard server, with reconnection,
/// deadlines, bounded retry, and `serve.*` metrics. Implements
/// [`ShardBackend`], so it plugs into the same fusion/merge driver as an
/// in-process shard.
pub struct RemoteShard {
    shard: usize,
    conn: MuxConn,
    /// Cached gallery size, refreshed by enroll acks and health checks
    /// (the [`ShardBackend::shard_len`] accessor is infallible).
    len: AtomicUsize,
    retry: RetryPolicy,
    metrics: ServeMetrics,
    /// The coordinator's mirror of this shard's served-part fingerprint
    /// chain: every decoded re-rank response is folded here exactly as the
    /// shard folds what it serves (local ids, selection order), so scraping
    /// the shard's chain with [`Frame::Fingerprint`] and comparing detects
    /// any divergence between what the shard computed and what arrived.
    mirror: RunFingerprint,
    /// Exclusive upper bound of the last [`Frame::Trace`] drain: the next
    /// drain only fetches spans with `id >= trace_high_water`.
    trace_high_water: AtomicU64,
}

impl RemoteShard {
    /// Creates a (not yet connected) handle to the shard at `addr`.
    /// `shard` is this shard's index in the coordinator's round-robin
    /// mapping; it salts backoff jitter and labels errors and spans.
    pub fn new(addr: SocketAddr, shard: usize, deadline: Duration, retry: RetryPolicy) -> Self {
        RemoteShard {
            shard,
            conn: MuxConn::new(addr, deadline),
            len: AtomicUsize::new(0),
            retry,
            metrics: ServeMetrics::default(),
            mirror: RunFingerprint::new(IndexConfig::default().fingerprint_base(0)),
            trace_high_water: AtomicU64::new(0),
        }
    }

    /// Attaches the `serve.*` instrument bundle.
    pub fn with_metrics(mut self, metrics: ServeMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Re-bases the mirror chain. The coordinator calls this with its
    /// config's fingerprint base so the mirror starts from the same state
    /// as the shard's own part chain.
    pub fn with_fingerprint_base(mut self, base: FingerprintChain) -> Self {
        self.mirror = RunFingerprint::new(base);
        self
    }

    /// The mirror chain built from this connection's decoded re-rank
    /// responses.
    pub fn mirror_fingerprint(&self) -> FingerprintSnapshot {
        self.mirror.snapshot()
    }

    /// This shard's index in the round-robin id mapping.
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    /// The deepest concurrent-request interleaving this shard's connection
    /// has ever carried (see [`MuxConn::peak_in_flight`]).
    pub fn peak_in_flight(&self) -> usize {
        self.conn.peak_in_flight()
    }

    fn unavailable(&self, detail: String) -> ShardError {
        ShardError::Unavailable {
            shard: self.shard,
            detail,
        }
    }

    fn protocol(&self, detail: String) -> ShardError {
        ShardError::Protocol {
            shard: self.shard,
            detail,
        }
    }

    fn map_mux(&self, e: MuxError) -> CallError {
        match e {
            MuxError::Transport { detail, timeout } => CallError::Transport(detail, timeout),
            MuxError::Protocol { detail } => CallError::Fatal(self.protocol(detail)),
        }
    }

    /// One request/response exchange with deadline, reconnection and
    /// bounded retry. Transport failures — and typed `OVERLOADED` sheds,
    /// which mean "try again once the queue drains" — are retried with
    /// backoff; protocol-invalid replies (including other typed
    /// [`Frame::Error`]s) fail immediately — resending the same bytes
    /// cannot fix those.
    pub fn call(&self, request: &Frame) -> Result<Frame, ShardError> {
        let kind = request.kind();
        let mut last_io = String::new();
        for attempt in 0..self.retry.attempts {
            if attempt > 0 {
                self.metrics.retries.incr();
                std::thread::sleep(self.retry.backoff(self.shard, attempt));
            }
            let outcome = self
                .begin_rpc(request)
                .and_then(|pending| self.finish_rpc(pending, kind));
            match outcome {
                Ok((response, _observation)) => return Ok(response),
                Err(CallError::Transport(detail, timed_out)) => {
                    if timed_out {
                        self.metrics.timeouts.incr();
                    }
                    last_io = detail;
                }
                Err(CallError::Fatal(e)) => return Err(e),
            }
        }
        Err(self.unavailable(format!(
            "{} attempts exhausted; last error: {last_io}",
            self.retry.attempts
        )))
    }

    /// Puts `request` on the wire without waiting for the response — the
    /// pipelining half. Pair with [`finish_rpc`](Self::finish_rpc).
    ///
    /// When telemetry is live, a detached `serve.rpc` span opens *here*
    /// (so it covers serialization, the write, and the whole pipelined
    /// wait) and the request is stamped with a [`TraceContext`] carrying
    /// that span's id — the id the shard's `server.request` span records
    /// as `remote_parent`, which is what lets the post-drain merge stitch
    /// the two process-local trees into one.
    pub(crate) fn begin_rpc(&self, request: &Frame) -> Result<PendingRpc, CallError> {
        self.metrics.requests.incr();
        let telemetry = &self.metrics.telemetry;
        let span = telemetry.is_enabled().then(|| {
            telemetry.detached_span(
                "serve.rpc",
                &[
                    ("kind", request.kind().to_string()),
                    ("shard", self.shard.to_string()),
                ],
            )
        });
        // Stamp a copy only when there is a context to carry — untraced
        // runs put the caller's frame on the wire untouched.
        let stamped = span.as_ref().and_then(|s| s.id()).and_then(|rpc_id| {
            let ctx = TraceContext {
                trace_id: telemetry.trace_ctx().span_id().unwrap_or(rpc_id),
                parent_span_id: rpc_id,
                sampled: true,
            };
            let mut request = request.clone();
            match &mut request {
                Frame::EnrollBatch { trace, .. }
                | Frame::StageOne { trace, .. }
                | Frame::Rerank { trace, .. } => {
                    *trace = Some(ctx);
                    Some(request)
                }
                _ => None, // this frame type has no context section
            }
        });
        let (ticket, tx) = self
            .conn
            .begin(stamped.as_ref().unwrap_or(request))
            .map_err(|e| self.map_mux(e))?;
        self.metrics.bytes_tx.add(tx as u64);
        Ok(PendingRpc {
            ticket,
            start: Instant::now(),
            tx_bytes: tx as u64,
            span,
        })
    }

    /// Awaits the response for a [`begin_rpc`](Self::begin_rpc), mapping
    /// typed error frames: `OVERLOADED` is retryable (the `serve.shed`
    /// counter records each shed observed), everything else is fatal.
    /// Closes the rpc span opened at begin (failed exchanges record it
    /// too) and returns what the exchange observed — round-trip time,
    /// bytes, and any [`ServerTiming`] the shard echoed — as slow-log raw
    /// material.
    pub(crate) fn finish_rpc(
        &self,
        pending: PendingRpc,
        kind: &'static str,
    ) -> Result<(Frame, RpcObservation), CallError> {
        let PendingRpc {
            ticket,
            start,
            tx_bytes,
            span,
        } = pending;
        // On a transport/protocol error `span` drops right here, recording
        // the failed attempt with its true duration.
        let (response, rx) = self.conn.finish(ticket).map_err(|e| self.map_mux(e))?;
        let elapsed = start.elapsed();
        self.metrics.bytes_rx.add(rx as u64);
        self.metrics.record_rpc(kind, elapsed);
        if let Frame::Error { code: c, detail } = response {
            if c == code::OVERLOADED {
                self.metrics.shed.incr();
                return Err(CallError::Transport(
                    format!("shed by shard: {detail}"),
                    false,
                ));
            }
            let name = match c {
                code::CONFIG_MISMATCH => "config mismatch",
                code::BAD_REQUEST => "bad request",
                code::INTERNAL => "internal shard error",
                _ => "unknown error code",
            };
            return Err(CallError::Fatal(self.protocol(format!("{name}: {detail}"))));
        }
        let timing = match &response {
            Frame::StageOneOk { timing, .. } | Frame::RerankOk { timing, .. } => *timing,
            _ => None,
        };
        if let Some(mut span) = span {
            if let Some(t) = timing {
                span.add_attr("server_queue_wait_ns", t.queue_wait_ns.to_string());
                span.add_attr("server_work_ns", t.work_ns.to_string());
            }
            span.finish();
        }
        let observation = RpcObservation {
            elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
            bytes_tx: tx_bytes,
            bytes_rx: rx as u64,
            timing,
        };
        Ok((response, observation))
    }

    /// Checks a stage-1 response's shape against the cached shard length.
    fn validate_stage_one(&self, response: Frame) -> Result<StageOneScores, ShardError> {
        let scores = match response {
            Frame::StageOneOk { scores, timing: _ } => scores,
            other => {
                return Err(self.protocol(format!("expected stage1_ok, got '{}'", other.kind())))
            }
        };
        let want = self.shard_len();
        if scores.vote_scores.len() != want || scores.cyl_scores.len() != want {
            return Err(self.protocol(format!(
                "stage-1 scored {} entries, shard holds {want}",
                scores.vote_scores.len()
            )));
        }
        Ok(scores)
    }

    /// Checks a re-rank response echoes the requested ids in order, then
    /// folds it into the mirror chain exactly as the shard folds what it
    /// serves.
    fn validate_stage_two(
        &self,
        selected_local: &[u32],
        response: Frame,
    ) -> Result<Vec<fp_index::Candidate>, ShardError> {
        let candidates = match response {
            Frame::RerankOk {
                candidates,
                timing: _,
            } => candidates,
            other => {
                return Err(self.protocol(format!("expected rerank_ok, got '{}'", other.kind())))
            }
        };
        if candidates.len() != selected_local.len()
            || candidates
                .iter()
                .zip(selected_local)
                .any(|(c, &id)| c.id != id)
        {
            return Err(self.protocol(format!(
                "re-rank returned {} candidates for {} requested ids (or ids differ)",
                candidates.len(),
                selected_local.len()
            )));
        }
        // Mirror-fold the decoded part exactly as the shard folds what it
        // serves (local ids, selection order) before the ids are
        // globalized, so the two chains agree iff shard and wire agree.
        self.mirror.record_item(&candidates[..]);
        Ok(candidates)
    }

    /// Enrolls `templates` on this shard in chunked batches, carrying
    /// `config` so the server can reject a tuning mismatch.
    pub fn enroll(&self, config: &IndexConfig, templates: &[Template]) -> Result<(), ShardError> {
        for chunk in templates.chunks(ENROLL_CHUNK.max(1)) {
            let request = Frame::EnrollBatch {
                config: *config,
                templates: chunk.to_vec(),
                trace: None,
            };
            match self.call(&request)? {
                Frame::EnrollOk { shard_len, .. } => {
                    self.len.store(shard_len as usize, Ordering::Relaxed);
                }
                other => {
                    return Err(self.protocol(format!("expected enroll_ok, got '{}'", other.kind())))
                }
            }
        }
        Ok(())
    }

    /// Health round trip; refreshes the cached shard length.
    pub fn health(&self) -> Result<usize, ShardError> {
        match self.call(&Frame::Health)? {
            Frame::HealthOk { shard_len } => {
                self.len.store(shard_len as usize, Ordering::Relaxed);
                Ok(shard_len as usize)
            }
            other => Err(self.protocol(format!("expected health_ok, got '{}'", other.kind()))),
        }
    }

    /// Scrapes the shard's served-part fingerprint chain and compares it
    /// with this connection's mirror. A mismatch means the shard's recorded
    /// chain disagrees with the responses the coordinator actually decoded
    /// — behavioral drift that a candidate-list diff could only catch by
    /// re-scoring — and surfaces as [`ShardError::FingerprintDrift`] with
    /// the `serve.drift` counter bumped.
    pub fn verify_fingerprint(&self) -> Result<FingerprintSnapshot, ShardError> {
        let expected = self.mirror.snapshot();
        match self.call(&Frame::Fingerprint)? {
            Frame::FingerprintOk { value, searches } => {
                if value != expected.value {
                    self.metrics.drift.incr();
                    return Err(ShardError::FingerprintDrift {
                        shard: self.shard,
                        expected: expected.value,
                        reported: value,
                    });
                }
                Ok(FingerprintSnapshot { value, searches })
            }
            other => Err(self.protocol(format!("expected fingerprint_ok, got '{}'", other.kind()))),
        }
    }

    /// Fetches the shard process's telemetry snapshot (counters plus
    /// duration and value histograms) over [`Frame::Stats`].
    #[allow(clippy::type_complexity)]
    pub fn fetch_stats(
        &self,
    ) -> Result<
        (
            Vec<(String, u64)>,
            Vec<(String, HistogramSnapshot)>,
            Vec<(String, HistogramSnapshot)>,
        ),
        ShardError,
    > {
        match self.call(&Frame::Stats)? {
            Frame::StatsOk {
                counters,
                durations,
                values,
            } => Ok((counters, durations, values)),
            other => Err(self.protocol(format!("expected stats_ok, got '{}'", other.kind()))),
        }
    }

    /// Best-effort clean shutdown of the shard process.
    pub fn shutdown(&self) -> Result<(), ShardError> {
        match self.call(&Frame::Shutdown)? {
            Frame::ShutdownOk => Ok(()),
            other => Err(self.protocol(format!("expected shutdown_ok, got '{}'", other.kind()))),
        }
    }

    /// Drains the shard's flight recorder — spans newer than the previous
    /// drain's high-water mark — and estimates the offset between the
    /// shard's trace clock and `telemetry`'s.
    ///
    /// The shard reads its clock while building the response; the
    /// coordinator brackets the RPC with its own clock reads and assumes
    /// the shard's read happened at the bracket midpoint. The estimate and
    /// the bracket width are recorded on the `serve.collect_trace` span,
    /// so skew is visible in the merged trace instead of silently folded
    /// into the shifted timestamps.
    pub fn collect_trace(&self, telemetry: &Telemetry) -> Result<RemoteTrace, ShardError> {
        let mut span = telemetry.is_enabled().then(|| {
            telemetry.detached_span("serve.collect_trace", &[("shard", self.shard.to_string())])
        });
        let since = self.trace_high_water.load(Ordering::Relaxed);
        let t_send = telemetry.trace_now_ns();
        let response = self.call(&Frame::Trace {
            since_span_id: since,
        })?;
        let t_recv = telemetry.trace_now_ns();
        let (now_ns, dropped_spans, spans) = match response {
            Frame::TraceOk {
                now_ns,
                dropped_spans,
                spans,
            } => (now_ns, dropped_spans, spans),
            other => {
                return Err(self.protocol(format!("expected trace_ok, got '{}'", other.kind())))
            }
        };
        let bracket_ns = t_recv.saturating_sub(t_send);
        let midpoint = t_send + bracket_ns / 2;
        let clock_offset_ns =
            (now_ns as i128 - midpoint as i128).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        if let Some(next) = spans.iter().map(|s| s.id).max().map(|max| max + 1) {
            self.trace_high_water.fetch_max(next, Ordering::Relaxed);
        }
        if let Some(span) = &mut span {
            span.add_attr("clock_offset_ns", clock_offset_ns.to_string());
            span.add_attr("bracket_ns", bracket_ns.to_string());
            span.add_attr("spans", spans.len().to_string());
        }
        Ok(RemoteTrace {
            shard: self.shard,
            spans,
            clock_offset_ns,
            dropped_spans,
        })
    }
}

/// Spans drained from one shard by [`RemoteShard::collect_trace`], with
/// the clock-offset estimate used to place them on the coordinator's
/// timeline at merge time.
#[derive(Debug, Clone)]
pub struct RemoteTrace {
    /// The shard they came from (= the merged trace's process lane).
    pub shard: usize,
    /// Drained span records (shard-local ids).
    pub spans: Vec<SpanRecord>,
    /// Estimated `shard clock − coordinator clock` (ns).
    pub clock_offset_ns: i64,
    /// Spans the shard lost to buffer capacity (cumulative).
    pub dropped_spans: u64,
}

/// What one completed RPC observed — the per-shard raw material of a
/// slow-log exemplar.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RpcObservation {
    pub(crate) elapsed_ns: u64,
    pub(crate) bytes_tx: u64,
    pub(crate) bytes_rx: u64,
    pub(crate) timing: Option<ServerTiming>,
}

/// An RPC whose request is on the wire but whose response has not been
/// awaited yet.
pub(crate) struct PendingRpc {
    ticket: Ticket,
    start: Instant,
    /// Wire bytes the request put on the socket.
    tx_bytes: u64,
    /// The detached `serve.rpc` span opened at begin; finished (or dropped,
    /// on failure) at finish. `None` when telemetry is disabled.
    span: Option<DetachedSpan>,
}

pub(crate) enum CallError {
    /// Retryable failure (detail, was-a-timeout): transport trouble or a
    /// typed `OVERLOADED` shed.
    Transport(String, bool),
    /// Non-retryable: protocol violation or any other typed error frame.
    Fatal(ShardError),
}

impl ShardBackend for RemoteShard {
    fn shard_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn stage_one(&self, probe: &Template) -> Result<StageOneScores, ShardError> {
        let response = self.call(&Frame::StageOne {
            probe: probe.clone(),
            trace: None,
        })?;
        self.validate_stage_one(response)
    }

    fn stage_two(
        &self,
        probe: &Template,
        selected_local: &[u32],
    ) -> Result<Vec<fp_index::Candidate>, ShardError> {
        let response = self.call(&Frame::Rerank {
            probe: probe.clone(),
            selected: selected_local.to_vec(),
            trace: None,
        })?;
        self.validate_stage_two(selected_local, response)
    }
}

/// Nanoseconds elapsed since `start`, saturating.
fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// A cross-process sharded 1:N index: the drop-in remote counterpart of
/// [`fp_index::ShardedIndex`], returning byte-identical [`SearchResult`]s.
/// Searches take `&self` and are thread-safe — N client threads may drive
/// one coordinator concurrently, multiplexing on the shard connections.
pub struct Coordinator {
    shards: Vec<RemoteShard>,
    config: IndexConfig,
    enrolled: usize,
    telemetry: Telemetry,
    /// Canonical run fingerprint, folded over merged results in
    /// global-fusion order — the same chain an unsharded
    /// [`fp_index::CandidateIndex`] builds for the same probes. The
    /// accumulator is commutative, so concurrent searches reach the same
    /// cumulative value regardless of interleaving.
    runfp: RunFingerprint,
    /// Searches completed, driving the every-Nth drift check.
    searches: AtomicU64,
    /// Verify shard fingerprints after every Nth search (0 = never).
    fingerprint_every: u64,
    /// Tail-latency exemplar log; every search is offered when attached.
    slowlog: Option<Arc<SlowLog>>,
    /// Remote spans drained by [`collect_traces`](Self::collect_traces),
    /// waiting to be merged into an export by
    /// [`merged_trace`](Self::merged_trace).
    collected: Mutex<Vec<RemoteTrace>>,
}

impl Coordinator {
    /// Connects to one shard server per address (shard k = `addrs[k]` in
    /// the round-robin id mapping) and health-checks each.
    pub fn connect(
        addrs: &[SocketAddr],
        config: IndexConfig,
        deadline: Duration,
        retry: RetryPolicy,
    ) -> Result<Coordinator, ShardError> {
        assert!(!addrs.is_empty(), "need at least one shard address");
        let shards: Vec<RemoteShard> = addrs
            .iter()
            .enumerate()
            .map(|(k, &addr)| {
                RemoteShard::new(addr, k, deadline, retry)
                    .with_fingerprint_base(config.fingerprint_base(0))
            })
            .collect();
        let mut enrolled = 0;
        for shard in &shards {
            enrolled += shard.health()?;
        }
        Ok(Coordinator {
            shards,
            runfp: RunFingerprint::new(config.fingerprint_base(0)),
            config,
            enrolled,
            telemetry: Telemetry::disabled(),
            searches: AtomicU64::new(0),
            fingerprint_every: 0,
            slowlog: None,
            collected: Mutex::new(Vec::new()),
        })
    }

    /// Re-seeds the canonical run fingerprint (the per-shard mirror chains
    /// keep seed 0 — shard servers have no notion of the run seed).
    pub fn with_run_seed(mut self, seed: u64) -> Self {
        self.runfp = RunFingerprint::new(self.config.fingerprint_base(seed));
        self
    }

    /// Verifies every shard's fingerprint chain after every `every`th
    /// search (0, the default, disables the periodic check;
    /// [`verify_fingerprints`](Self::verify_fingerprints) can always be
    /// called explicitly).
    pub fn with_fingerprint_every(mut self, every: u64) -> Self {
        self.fingerprint_every = every;
        self
    }

    /// Registers `serve.*` instruments and the trace-span source on
    /// `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        let metrics = ServeMetrics::new(telemetry);
        self.shards = self
            .shards
            .into_iter()
            .map(|shard| shard.with_metrics(metrics.clone()))
            .collect();
        self
    }

    /// Attaches a tail-latency exemplar log: every completed search is
    /// offered; those exceeding the threshold keep their full per-shard
    /// breakdown (see [`SlowLog`]).
    pub fn with_slowlog(mut self, slowlog: Arc<SlowLog>) -> Self {
        self.slowlog = Some(slowlog);
        self
    }

    /// The attached slow log, if any.
    pub fn slowlog(&self) -> Option<&Arc<SlowLog>> {
        self.slowlog.as_ref()
    }

    /// Number of remote shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total enrolled templates across all shards.
    pub fn len(&self) -> usize {
        self.enrolled
    }

    /// Whether the distributed gallery is empty.
    pub fn is_empty(&self) -> bool {
        self.enrolled == 0
    }

    /// The config every shard must score under.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The deepest concurrent-request interleaving observed on any shard
    /// connection — how many requests were actually in flight at once on
    /// one socket. Sequential callers keep this at 1; N threads driving
    /// [`search`](Self::search) concurrently push it toward N × the
    /// per-search RPC overlap.
    pub fn peak_in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.peak_in_flight())
            .max()
            .unwrap_or(0)
    }

    /// Enrolls a batch: templates are dealt round-robin (continuing from
    /// previous batches) and each shard enrolls its share on its own
    /// thread — the same global id assignment as [`fp_index::ShardedIndex`]
    /// and, transitively, the unsharded index.
    pub fn enroll_all(&mut self, templates: &[Template]) -> Result<(), ShardError> {
        let s = self.shards.len();
        let _span = self.telemetry.trace_span(
            "index.enroll_all",
            &[
                ("batch", templates.len().to_string()),
                ("shards", s.to_string()),
                ("transport", "tcp".to_string()),
            ],
        );
        let mut per_shard: Vec<Vec<Template>> = vec![Vec::new(); s];
        for (offset, template) in templates.iter().enumerate() {
            per_shard[(self.enrolled + offset) % s].push(template.clone());
        }
        let config = &self.config;
        let ctx = self.telemetry.trace_ctx();
        let telemetry = &self.telemetry;
        let results: Vec<Result<(), ShardError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&per_shard)
                .map(|(shard, batch)| {
                    let ctx = &ctx;
                    scope.spawn(move || {
                        let _adopt = telemetry.in_ctx(ctx);
                        shard.enroll(config, batch)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("enroll worker panicked"))
                .collect()
        });
        for result in results {
            result?;
        }
        self.enrolled += templates.len();
        Ok(())
    }

    /// Searches with the configured shortlist budget.
    pub fn search(&self, probe: &Template) -> Result<SearchResult, ShardError> {
        self.search_with_budget(probe, self.config.shortlist)
    }

    /// Searches with an explicit **total** shortlist budget. Structurally
    /// the same sequence as [`fp_index::ShardedIndex::search_with_budget`]:
    /// stage-1 on every shard, one global fusion (local), stage-2 on every
    /// shard, total-order merge — only the transport differs, and the
    /// per-shard RPCs are pipelined (all requests written before any
    /// response is awaited) rather than fanned out on threads.
    pub fn search_with_budget(
        &self,
        probe: &Template,
        shortlist: usize,
    ) -> Result<SearchResult, ShardError> {
        let s = self.shards.len();
        let n = self.enrolled;
        let search_start = Instant::now();
        let _span = self.telemetry.trace_span(
            "index.search",
            &[
                ("gallery", n.to_string()),
                ("shards", s.to_string()),
                ("transport", "tcp".to_string()),
            ],
        );
        // Per-shard observations of this one search — becomes a slow-log
        // exemplar iff the search ends up over the threshold.
        let mut breakdown: Vec<ShardBreakdown> = (0..s)
            .map(|k| ShardBreakdown {
                shard: k,
                ..ShardBreakdown::default()
            })
            .collect();
        let absorb = |b: &mut ShardBreakdown, o: &RpcObservation| {
            b.bytes_tx += o.bytes_tx;
            b.bytes_rx += o.bytes_rx;
            if let Some(t) = o.timing {
                b.queue_wait_ns += t.queue_wait_ns;
                b.work_ns += t.work_ns;
            }
        };

        // Stage 1, pipelined: every shard has the request on the wire
        // before the first response is awaited, so shards compute
        // concurrently. A shard whose pipelined exchange hits a retryable
        // failure falls back to the full retrying `call` path.
        let pending: Vec<Result<PendingRpc, CallError>> = self
            .shards
            .iter()
            .map(|shard| {
                shard.begin_rpc(&Frame::StageOne {
                    probe: probe.clone(),
                    trace: None,
                })
            })
            .collect();
        let mut stage1 = Vec::with_capacity(s);
        for (shard, begun) in self.shards.iter().zip(pending) {
            let k = shard.shard_index();
            let scores = match begun.and_then(|p| shard.finish_rpc(p, "stage1")) {
                Ok((response, observation)) => {
                    breakdown[k].stage1_ns = observation.elapsed_ns;
                    absorb(&mut breakdown[k], &observation);
                    shard.validate_stage_one(response)?
                }
                Err(CallError::Fatal(e)) => return Err(e),
                Err(CallError::Transport(detail, _)) => {
                    breakdown[k].retried = true;
                    breakdown[k].shed |= detail.starts_with("shed by shard");
                    let retry_start = Instant::now();
                    let scores = shard.stage_one(probe)?;
                    breakdown[k].stage1_ns = elapsed_ns(retry_start);
                    scores
                }
            };
            stage1.push(scores);
        }

        // ONE global fusion over the stitched score arrays — same helpers,
        // same bytes as the in-process sharded index.
        let (vote_scores, cyl_scores) = stitch_stage_one(&stage1, n);
        let selected_local = select_per_shard(&vote_scores, &cyl_scores, shortlist, s);

        // Stage 2, pipelined the same way: exact re-rank of each shard's
        // slice. Empty slices skip the round trip entirely.
        let pending: Vec<Option<Result<PendingRpc, CallError>>> = self
            .shards
            .iter()
            .map(|shard| {
                let k = shard.shard_index();
                if selected_local[k].is_empty() {
                    return None;
                }
                Some(shard.begin_rpc(&Frame::Rerank {
                    probe: probe.clone(),
                    selected: selected_local[k].clone(),
                    trace: None,
                }))
            })
            .collect();
        let mut parts = Vec::with_capacity(s);
        for (shard, begun) in self.shards.iter().zip(pending) {
            let k = shard.shard_index();
            let mut part = match begun {
                None => Vec::new(),
                Some(begun) => match begun.and_then(|p| shard.finish_rpc(p, "rerank")) {
                    Ok((response, observation)) => {
                        breakdown[k].rerank_ns = observation.elapsed_ns;
                        absorb(&mut breakdown[k], &observation);
                        shard.validate_stage_two(&selected_local[k], response)?
                    }
                    Err(CallError::Fatal(e)) => return Err(e),
                    Err(CallError::Transport(detail, _)) => {
                        breakdown[k].retried = true;
                        breakdown[k].shed |= detail.starts_with("shed by shard");
                        let retry_start = Instant::now();
                        let part = shard.stage_two(probe, &selected_local[k])?;
                        breakdown[k].rerank_ns = elapsed_ns(retry_start);
                        part
                    }
                },
            };
            globalize_and_sort(&mut part, k, s);
            parts.push(part);
        }

        let result = SearchResult::from_parts(merge_sorted_parts(&parts), n);
        self.runfp.record_item(&result);
        let done = self.searches.fetch_add(1, Ordering::Relaxed) + 1;
        // Offer the slow log before any periodic fingerprint round trips
        // so those RPCs never pollute the end-to-end latency.
        if let Some(slowlog) = &self.slowlog {
            slowlog.observe(done, elapsed_ns(search_start), breakdown);
        }
        if self.fingerprint_every > 0 && done.is_multiple_of(self.fingerprint_every) {
            self.verify_fingerprints()?;
        }
        Ok(result)
    }

    /// The canonical run fingerprint over every search served so far —
    /// equal to the unsharded index's chain for the same config, seed and
    /// probe sequence.
    pub fn run_fingerprint(&self) -> FingerprintSnapshot {
        self.runfp.snapshot()
    }

    /// The per-shard mirror chains (what the coordinator decoded), in
    /// shard order.
    pub fn shard_fingerprints(&self) -> Vec<FingerprintSnapshot> {
        self.shards
            .iter()
            .map(|shard| shard.mirror_fingerprint())
            .collect()
    }

    /// Scrapes every shard's served-part chain over [`Frame::Fingerprint`]
    /// and compares it with this coordinator's mirror of the responses it
    /// decoded. The first drifting shard fails the call with
    /// [`ShardError::FingerprintDrift`] (after bumping `serve.drift`);
    /// otherwise returns the verified snapshots in shard order.
    pub fn verify_fingerprints(&self) -> Result<Vec<FingerprintSnapshot>, ShardError> {
        let _span = self.telemetry.trace_span(
            "serve.fingerprint",
            &[("shards", self.shards.len().to_string())],
        );
        self.shards
            .iter()
            .map(|shard| shard.verify_fingerprint())
            .collect()
    }

    /// Fetches every shard process's telemetry snapshot over
    /// [`Frame::Stats`] and merges it into this coordinator's telemetry as
    /// gauges under `shard<k>.remote.*` (counters as their value,
    /// histograms as `<name>.count` / `<name>.sum`). Gauges make re-scrapes
    /// idempotent: each scrape overwrites the last.
    pub fn scrape_stats(&self) -> Result<(), ShardError> {
        let _span = self
            .telemetry
            .trace_span("serve.stats", &[("shards", self.shards.len().to_string())]);
        for shard in &self.shards {
            let (counters, durations, values) = shard.fetch_stats()?;
            let k = shard.shard_index();
            for (name, value) in counters {
                self.telemetry
                    .gauge(&format!("shard{k}.remote.{name}"))
                    .set(value as f64);
            }
            for (name, h) in durations.into_iter().chain(values) {
                self.telemetry
                    .gauge(&format!("shard{k}.remote.{name}.count"))
                    .set(h.count as f64);
                self.telemetry
                    .gauge(&format!("shard{k}.remote.{name}.sum"))
                    .set(h.sum as f64);
            }
        }
        Ok(())
    }

    /// Drains every shard's flight recorder over [`Frame::Trace`] and
    /// retains the spans for [`merged_trace`](Self::merged_trace).
    /// Incremental: each round only fetches spans newer than the shard's
    /// previous high-water mark, so periodic collection is cheap. Returns
    /// how many spans arrived in this round.
    pub fn collect_traces(&self) -> Result<usize, ShardError> {
        let mut fetched = 0;
        for shard in &self.shards {
            let remote = shard.collect_trace(&self.telemetry)?;
            fetched += remote.spans.len();
            self.collected
                .lock()
                .expect("collected traces poisoned")
                .push(remote);
        }
        Ok(fetched)
    }

    /// The coordinator's own trace with every collected drain merged in:
    /// one Chrome-trace process lane per shard, remote spans re-parented
    /// under the `serve.rpc` spans that issued them, timestamps shifted
    /// onto the coordinator's timeline by each drain's clock-offset
    /// estimate (see [`TraceSnapshot::merge_remote`]).
    pub fn merged_trace(&self) -> TraceSnapshot {
        let mut snapshot = self.telemetry.trace_snapshot();
        for remote in self
            .collected
            .lock()
            .expect("collected traces poisoned")
            .iter()
        {
            snapshot.merge_remote(
                remote.shard,
                remote.spans.clone(),
                remote.clock_offset_ns,
                remote.dropped_spans,
            );
        }
        snapshot
    }

    /// Sends every shard a clean shutdown. Returns the first error, but
    /// attempts all shards regardless.
    pub fn shutdown_all(&self) -> Result<(), ShardError> {
        let mut first_err = None;
        for shard in &self.shards {
            if let Err(e) = shard.shutdown() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
